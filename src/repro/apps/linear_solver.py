"""Multicolor Gauss–Seidel relaxation (the paper's citations [3, 4]).

Naumov et al.'s csrcolor — the paper's comparator — exists to
parallelize incomplete-LU and Gauss–Seidel preconditioners: if the
unknowns of ``Ax = b`` are colored so that no two coupled unknowns
share a color, then within a color class the Gauss–Seidel updates are
independent and can run in parallel; the sweep becomes ``num_colors``
bulk-synchronous steps instead of ``n`` sequential ones.

:func:`multicolor_gauss_seidel` runs that relaxation given any
:class:`~repro.core.result.ColoringResult` of the matrix graph;
:func:`matrix_graph` extracts the graph; fewer colors ⇒ fewer barriers
per sweep, which is precisely why the paper optimizes color count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.result import ColoringResult
from ..core.validate import assert_valid_coloring
from ..errors import ReproError
from ..graph.build import from_scipy
from ..graph.csr import CSRGraph

__all__ = ["matrix_graph", "multicolor_gauss_seidel", "gauss_seidel_reference"]


def matrix_graph(A) -> CSRGraph:
    """The adjacency graph of a (structurally symmetric) sparse matrix:
    vertices = unknowns, edges = symmetrized off-diagonal couplings."""
    return from_scipy(A, name="matrix_graph")


def _check_system(A, b):
    from scipy import sparse

    A = sparse.csr_matrix(A)
    b = np.asarray(b, dtype=np.float64)
    if A.shape[0] != A.shape[1]:
        raise ReproError("A must be square")
    if b.shape != (A.shape[0],):
        raise ReproError("b must be a vector matching A")
    diag = A.diagonal()
    if (diag == 0).any():
        raise ReproError("Gauss-Seidel requires a nonzero diagonal")
    return A, b, diag


def multicolor_gauss_seidel(
    A,
    b,
    coloring: ColoringResult,
    *,
    sweeps: int = 50,
    x0: Optional[np.ndarray] = None,
    tol: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gauss–Seidel with color-parallel updates.

    Per sweep, color classes are relaxed in color order; within a class
    all unknowns update simultaneously from the latest values — valid
    because the coloring guarantees no intra-class coupling, so the
    result is *identical* to some sequential Gauss–Seidel ordering.

    Returns ``(x, residual_history)``; stops early when the 2-norm
    residual drops below ``tol`` (0 disables).
    """
    A, b, diag = _check_system(A, b)
    graph = matrix_graph(A)
    assert_valid_coloring(graph, coloring.colors)
    norm = coloring.normalized()
    classes = [
        np.flatnonzero(norm == c) for c in range(1, coloring.num_colors + 1)
    ]
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    history = []
    for _ in range(sweeps):
        for cls in classes:
            # x_cls = (b_cls - offdiag_row @ x) / diag_cls, simultaneous.
            rows = A[cls]
            x[cls] += (b[cls] - rows @ x) / diag[cls]
        res = float(np.linalg.norm(b - A @ x))
        history.append(res)
        if tol and res < tol:
            break
    return x, np.asarray(history)


def gauss_seidel_reference(
    A,
    b,
    *,
    sweeps: int = 50,
    x0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain sequential Gauss–Seidel (natural order), for comparison."""
    A, b, diag = _check_system(A, b)
    n = len(b)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    indptr, indices, data = A.indptr, A.indices, A.data
    history = []
    for _ in range(sweeps):
        for i in range(n):
            row = slice(indptr[i], indptr[i + 1])
            x[i] += (b[i] - data[row] @ x[indices[row]]) / diag[i]
        history.append(float(np.linalg.norm(b - A @ x)))
    return x, np.asarray(history)
