"""Sudoku as graph coloring (the paper's citation [6]).

A Sudoku grid is the canonical precolored-coloring instance: the 81
cells form a graph where two cells are adjacent when they share a row,
column, or 3×3 box; the givens are precolored vertices; solving the
puzzle is finding a proper 9-coloring extending them.

:func:`sudoku_graph` builds the (generalized, box-size ``k``) Sudoku
graph; :func:`solve_sudoku` runs the exact solver of
:mod:`repro.core.exact`; :func:`board_to_precoloring` /
:func:`coloring_to_board` convert between 2-D boards and colorings.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.exact import exact_coloring
from ..errors import ReproError
from ..graph.build import from_edges
from ..graph.csr import CSRGraph

__all__ = [
    "sudoku_graph",
    "board_to_precoloring",
    "coloring_to_board",
    "solve_sudoku",
]


def sudoku_graph(k: int = 3) -> CSRGraph:
    """The Sudoku graph for box size ``k`` (side ``k²``, ``k⁴`` cells).

    Vertices are cells in row-major order; edges join same-row,
    same-column, and same-box cell pairs.  For k=3 this is the classic
    81-vertex, 810-edge Sudoku graph with chromatic number 9.
    """
    if k < 1:
        raise ReproError("box size must be >= 1")
    side = k * k
    cell = np.arange(side * side).reshape(side, side)
    edges = []
    for i in range(side):
        row = cell[i, :]
        col = cell[:, i]
        for group in (row, col):
            a, b = np.meshgrid(group, group)
            keep = a < b
            edges.append(np.column_stack([a[keep], b[keep]]))
    for bi in range(k):
        for bj in range(k):
            box = cell[bi * k : (bi + 1) * k, bj * k : (bj + 1) * k].ravel()
            a, b = np.meshgrid(box, box)
            keep = a < b
            edges.append(np.column_stack([a[keep], b[keep]]))
    return from_edges(
        np.concatenate(edges), num_vertices=side * side, name=f"sudoku_{side}"
    )


def board_to_precoloring(board) -> Dict[int, int]:
    """Convert a side×side array (0 = blank) into a precoloring dict."""
    arr = np.asarray(board)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ReproError("board must be square")
    side = arr.shape[0]
    out = {}
    for i in range(side):
        for j in range(side):
            v = int(arr[i, j])
            if v < 0 or v > side:
                raise ReproError(f"cell value {v} outside [0, {side}]")
            if v:
                out[i * side + j] = v
    return out


def coloring_to_board(colors: np.ndarray) -> np.ndarray:
    """Reshape a Sudoku coloring back into the side×side board."""
    side = int(round(len(colors) ** 0.5))
    if side * side != len(colors):
        raise ReproError("coloring length is not a square")
    return np.asarray(colors, dtype=np.int64).reshape(side, side)


def solve_sudoku(board, *, k: Optional[int] = None) -> Optional[np.ndarray]:
    """Solve a Sudoku board by exact graph coloring.

    Returns the completed board, or ``None`` if the puzzle is
    unsatisfiable.  Raises :class:`ReproError` if the givens already
    conflict.
    """
    arr = np.asarray(board)
    side = arr.shape[0]
    if k is None:
        k = int(round(side ** 0.5))
    if k * k != side:
        raise ReproError(f"board side {side} is not a perfect square")
    graph = sudoku_graph(k)
    from ..errors import ColoringError

    try:
        result = exact_coloring(
            graph, side, precolored=board_to_precoloring(arr)
        )
    except ColoringError as exc:
        raise ReproError(f"invalid puzzle: {exc}") from exc
    if result is None:
        return None
    return coloring_to_board(result.colors)
