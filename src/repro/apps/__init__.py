"""Downstream applications of graph coloring (the paper's motivation).

* :mod:`.scheduling` — chromatic scheduling of data-graph computations;
* :mod:`.jacobian` — sparse Jacobian compression (structurally
  orthogonal column groups);
* :mod:`.register_alloc` — register allocation on interference graphs;
* :mod:`.sudoku` — Sudoku as precolored exact coloring;
* :mod:`.linear_solver` — multicolor Gauss–Seidel relaxation.
"""

from .linear_solver import (
    gauss_seidel_reference,
    matrix_graph,
    multicolor_gauss_seidel,
)
from .sudoku import (
    board_to_precoloring,
    coloring_to_board,
    solve_sudoku,
    sudoku_graph,
)
from .jacobian import (
    column_intersection_graph,
    compress_jacobian,
    reconstruct_jacobian,
)
from .register_alloc import Allocation, allocate_registers, live_ranges_to_interference
from .scheduling import ChromaticSchedule, build_schedule

__all__ = [
    "ChromaticSchedule",
    "build_schedule",
    "column_intersection_graph",
    "compress_jacobian",
    "reconstruct_jacobian",
    "Allocation",
    "allocate_registers",
    "live_ranges_to_interference",
    "sudoku_graph",
    "solve_sudoku",
    "board_to_precoloring",
    "coloring_to_board",
    "matrix_graph",
    "multicolor_gauss_seidel",
    "gauss_seidel_reference",
]
