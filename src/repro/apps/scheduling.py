"""Chromatic scheduling of data-graph computations.

The paper's first motivating application [1]: "Given a coloring C,
many computations over same-colored vertices can be completely
data-parallel, and computations iterate over all colors to process all
vertices."  A coloring of the data graph yields a deterministic
parallel schedule: rounds = colors, and within a round every vertex can
be updated concurrently because no two neighbors share a round.

:class:`ChromaticSchedule` turns any :class:`ColoringResult` into that
round structure and can execute a user-supplied vertex update function
round by round, verifying determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core.result import ColoringResult
from ..core.validate import assert_valid_coloring
from ..errors import ReproError
from ..graph.csr import CSRGraph

__all__ = ["ChromaticSchedule", "build_schedule"]


@dataclass
class ChromaticSchedule:
    """A deterministic parallel schedule derived from a graph coloring."""

    graph: CSRGraph
    rounds: List[np.ndarray]  # rounds[i] = vertex ids processed in round i

    @property
    def num_rounds(self) -> int:
        """Rounds needed to touch every vertex once (= number of colors;
        fewer colors ⇒ fewer synchronization barriers)."""
        return len(self.rounds)

    @property
    def max_parallelism(self) -> int:
        """Largest round size (peak parallel width)."""
        return max((len(r) for r in self.rounds), default=0)

    @property
    def avg_parallelism(self) -> float:
        """Mean vertices per round."""
        if not self.rounds:
            return 0.0
        return self.graph.num_vertices / len(self.rounds)

    def verify(self) -> None:
        """Check the schedule invariant: no round contains two adjacent
        vertices, and every vertex appears exactly once."""
        seen = np.zeros(self.graph.num_vertices, dtype=np.int64)
        for rnd in self.rounds:
            in_round = np.zeros(self.graph.num_vertices, dtype=bool)
            in_round[rnd] = True
            seen[rnd] += 1
            src = np.repeat(
                np.arange(self.graph.num_vertices, dtype=np.int64),
                self.graph.degrees,
            )
            bad = in_round[src] & in_round[self.graph.indices]
            if bad.any():
                raise ReproError("schedule round contains adjacent vertices")
        if not (seen == 1).all():
            raise ReproError("schedule must cover every vertex exactly once")

    def execute(
        self,
        state: np.ndarray,
        update: Callable[[np.ndarray, np.ndarray, CSRGraph], np.ndarray],
    ) -> np.ndarray:
        """Run one sweep of ``update`` over all vertices, round by round.

        ``update(state, vertex_ids, graph)`` returns the new values for
        ``vertex_ids``; within a round the updates read a consistent
        state because no two round members are adjacent — this is what
        makes the result deterministic regardless of intra-round order.
        """
        state = np.array(state, copy=True)
        for rnd in self.rounds:
            state[rnd] = update(state, rnd, self.graph)
        return state


def build_schedule(graph: CSRGraph, result: ColoringResult) -> ChromaticSchedule:
    """Build the round structure from a (validated) coloring."""
    assert_valid_coloring(graph, result.colors)
    norm = result.normalized()
    rounds = [
        np.flatnonzero(norm == c).astype(np.int64)
        for c in range(1, result.num_colors + 1)
    ]
    return ChromaticSchedule(graph=graph, rounds=rounds)
