"""Register allocation via interference-graph coloring.

The paper's second citation [2] (Chaitin et al.): variables whose live
ranges overlap *interfere* and must live in different registers, so a
k-coloring of the interference graph is an assignment to k registers.

This module provides the classic pipeline on a linear (straight-line)
code model:

1. :func:`live_ranges_to_interference` — build the interference graph
   from variables' [start, end) live intervals;
2. :func:`allocate_registers` — color it with any registered coloring
   implementation and report the register assignment;
3. spill handling — when a register budget is given, highest-degree
   variables of over-budget colors are spilled and the remainder
   re-colored, iterating until the budget holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .._rng import RngLike
from ..core.registry import run_algorithm
from ..errors import ReproError
from ..graph.build import from_edges
from ..graph.csr import CSRGraph

__all__ = ["Allocation", "live_ranges_to_interference", "allocate_registers"]


@dataclass
class Allocation:
    """Outcome of a register-allocation run."""

    registers: np.ndarray  # register index per variable, −1 = spilled
    num_registers: int  # registers actually used
    spilled: List[int] = field(default_factory=list)

    @property
    def spill_count(self) -> int:
        return len(self.spilled)


def live_ranges_to_interference(
    starts: Sequence[int], ends: Sequence[int]
) -> CSRGraph:
    """Interference graph of live intervals ``[start, end)``.

    Two variables interfere iff their intervals overlap.  Sweep-line
    construction: O(n log n + |E|).
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape or starts.ndim != 1:
        raise ReproError("starts/ends must be equal-length 1-D sequences")
    if (ends < starts).any():
        raise ReproError("every live range needs end >= start")
    n = len(starts)
    order = np.argsort(starts, kind="stable")
    live: List[int] = []  # sweep state: currently live variable ids
    edges = []
    for v in order:
        live = [u for u in live if ends[u] > starts[v]]
        for u in live:
            edges.append((u, v))
        live.append(v)
    arr = (
        np.asarray(edges, dtype=np.int64)
        if edges
        else np.empty((0, 2), dtype=np.int64)
    )
    return from_edges(arr, num_vertices=n, name="interference")


def allocate_registers(
    interference: CSRGraph,
    *,
    max_registers: Optional[int] = None,
    algorithm: str = "cpu.greedy_sl",
    rng: RngLike = None,
    max_spill_rounds: Optional[int] = None,
) -> Allocation:
    """Assign registers by coloring the interference graph.

    With ``max_registers`` set, variables are spilled (highest degree
    first, Chaitin's heuristic) until the remaining subgraph colors
    within budget.  Without it, the coloring's size is the answer to
    "how many registers does this code need".
    """
    from ..graph.build import induced_subgraph

    n = interference.num_vertices
    alive = np.ones(n, dtype=bool)
    spilled: List[int] = []
    rounds = max_spill_rounds if max_spill_rounds is not None else n
    for _ in range(rounds + 1):
        sub, ids = induced_subgraph(interference, alive)
        if sub.num_vertices == 0:
            return Allocation(
                registers=np.full(n, -1, dtype=np.int64),
                num_registers=0,
                spilled=spilled,
            )
        result = run_algorithm(algorithm, sub, rng=rng)
        norm = result.normalized()
        if max_registers is None or result.num_colors <= max_registers:
            registers = np.full(n, -1, dtype=np.int64)
            registers[ids] = norm - 1
            return Allocation(
                registers=registers,
                num_registers=result.num_colors,
                spilled=spilled,
            )
        # Spill the highest-degree variable among the over-budget colors.
        over = ids[norm > max_registers]
        victim = over[np.argmax(interference.degrees[over])]
        spilled.append(int(victim))
        alive[victim] = False
    raise ReproError("spill loop failed to converge")

