"""Generic graph primitives built on the Gunrock operators.

The coloring algorithms are the paper's contribution, but the point of
a *framework* is that other primitives compose from the same operators
("Gunrock is a parallel graph analytics library", §III-B).  These
demonstrate that the substrate is general — and double as independent
correctness checks against :mod:`repro.graph.traversal`:

* :func:`bfs` — frontier-synchronous breadth-first search (advance +
  status filter), the canonical Gunrock primitive;
* :func:`connected_components` — BFS-based labeling on the operators.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import GraphError
from ..gpusim.cost_model import CostModel
from ..gpusim.device import DeviceSpec
from ..graph.csr import CSRGraph
from .enactor import Enactor
from .frontier import Frontier
from .operators import GunrockContext, advance, compute, filter_frontier

__all__ = ["bfs", "connected_components"]


def bfs(
    graph: CSRGraph,
    source: int,
    *,
    device: Optional[DeviceSpec] = None,
) -> Tuple[np.ndarray, CostModel]:
    """Frontier-synchronous BFS from ``source``.

    Returns ``(levels, cost_model)``: distances (−1 unreachable) and
    the accumulated kernel accounting.  Per iteration: one advance over
    the current frontier, one compute labeling the fresh vertices, one
    filter compacting the next frontier.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range [0, {n})")
    cost = CostModel(device)
    ctx = GunrockContext(graph, cost)
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = Frontier(np.array([source], dtype=np.int64), _trusted=True)
    enactor = Enactor(ctx, max_iterations=n + 2)

    def iteration(it: int) -> bool:
        nonlocal frontier
        ef = advance(ctx, frontier, name="bfs_advance")
        fresh = np.unique(ef.targets[levels[ef.targets] < 0])

        def label_op(ids: np.ndarray) -> None:
            levels[ids] = it + 1

        next_frontier = Frontier(fresh, _trusted=True)
        compute(ctx, next_frontier, label_op, name="bfs_label", loop="map")
        frontier = filter_frontier(
            ctx,
            next_frontier,
            np.ones(len(next_frontier), dtype=bool),
            name="bfs_compact",
        )
        return bool(frontier)

    if n:
        enactor.run(iteration)
    return levels, cost


def connected_components(
    graph: CSRGraph,
    *,
    device: Optional[DeviceSpec] = None,
) -> Tuple[np.ndarray, CostModel]:
    """Component labels via repeated frontier BFS on the operators.

    Returns ``(labels, cost_model)`` with 0-based component ids in
    vertex-id discovery order (matching
    :func:`repro.graph.traversal.connected_components`).
    """
    n = graph.num_vertices
    cost = CostModel(device)
    labels = np.full(n, -1, dtype=np.int64)
    count = 0
    for seed in range(n):
        if labels[seed] >= 0:
            continue
        levels, sub_cost = bfs(graph, seed, device=device)
        cost.counters.merge(sub_cost.counters)
        labels[levels >= 0] = count
        count += 1
    return labels, cost
