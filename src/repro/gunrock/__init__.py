"""A from-scratch data-centric (Gunrock-style) GPU graph framework.

Frontiers plus the advance / compute / neighbor-reduce / filter
operators of §III-B, executing vectorized on the host while charging a
:class:`~repro.gpusim.CostModel` with each operator's structural GPU
cost.
"""

from .enactor import Enactor
from .frontier import EdgeFrontier, Frontier
from .primitives import bfs, connected_components
from .operators import (
    GunrockContext,
    advance,
    compute,
    filter_frontier,
    neighbor_reduce,
)

__all__ = [
    "Frontier",
    "EdgeFrontier",
    "GunrockContext",
    "Enactor",
    "compute",
    "advance",
    "neighbor_reduce",
    "filter_frontier",
    "bfs",
    "connected_components",
]
