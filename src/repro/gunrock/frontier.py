"""Frontiers — the central data structure of the data-centric abstraction.

Gunrock "employs a high-level data-centric abstraction focused on
operations on vertex or edge frontiers" (§III-B).  A
:class:`Frontier` is an immutable, sorted set of active vertex ids (or
an edge frontier of (source, target) pairs produced by advance).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import FrontierError
from ..graph.csr import CSRGraph

__all__ = ["Frontier", "EdgeFrontier"]


class Frontier:
    """An active-vertex set, stored as a sorted unique id array."""

    __slots__ = ("ids",)

    def __init__(self, ids: np.ndarray, *, _trusted: bool = False) -> None:
        arr = np.asarray(ids, dtype=np.int64)
        if not _trusted:
            arr = np.unique(arr)
        self.ids = arr
        self.ids.setflags(write=False)

    @classmethod
    def all_vertices(cls, graph: CSRGraph) -> "Frontier":
        """The full-vertex frontier the coloring drivers start from
        (Alg. 5 line 8: ``F ← v ∀v ∈ G``)."""
        return cls(np.arange(graph.num_vertices, dtype=np.int64), _trusted=True)

    @classmethod
    def empty(cls) -> "Frontier":
        return cls(np.empty(0, dtype=np.int64), _trusted=True)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Frontier":
        """Frontier of the true positions of a boolean per-vertex mask."""
        return cls(np.flatnonzero(mask).astype(np.int64), _trusted=True)

    def degrees(self, graph: CSRGraph) -> np.ndarray:
        """Neighbor-list lengths of the active vertices (launch order)."""
        if len(self.ids) and self.ids[-1] >= graph.num_vertices:
            raise FrontierError("frontier vertex id exceeds graph size")
        return graph.offsets[self.ids + 1] - graph.offsets[self.ids]

    def __len__(self) -> int:
        return len(self.ids)

    def __bool__(self) -> bool:
        return len(self.ids) > 0

    def __repr__(self) -> str:
        return f"<Frontier size={len(self.ids)}>"


class EdgeFrontier:
    """An edge frontier: parallel (source, target) arrays with segment
    boundaries back into the originating vertex frontier.

    Produced by the advance operator; consumed by segmented reduction
    (the neighbor-reduce of Alg. 7).
    """

    __slots__ = ("sources", "targets", "segment_offsets", "origin")

    def __init__(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        segment_offsets: np.ndarray,
        origin: Frontier,
    ) -> None:
        if len(sources) != len(targets):
            raise FrontierError("sources/targets must align")
        if len(segment_offsets) != len(origin) + 1:
            raise FrontierError("segment offsets must cover the origin frontier")
        self.sources = sources
        self.targets = targets
        self.segment_offsets = segment_offsets
        self.origin = origin

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def __len__(self) -> int:
        return len(self.targets)

    def __repr__(self) -> str:
        return (
            f"<EdgeFrontier edges={self.num_edges} "
            f"segments={len(self.origin)}>"
        )
