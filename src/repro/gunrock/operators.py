"""Gunrock operators: compute, advance, neighbor-reduce, filter.

These are the three operators the paper builds its coloring variants
from (§III-B), plus the filter used for frontier compaction.  Each
operator executes vectorized and charges the
:class:`~repro.gpusim.CostModel` with the structural cost of the real
GPU operator:

* ``compute`` — a parallel forall over the frontier.  When the kernel
  declares ``loop="serial"`` (the per-thread neighbor for-loop of
  Alg. 5 lines 25–35) the charge uses the warp lock-step model; a plain
  per-item kernel charges a map.
* ``advance`` — materializes the neighbor (edge) frontier, charged as a
  load-balanced edge-parallel kernel.
* ``neighbor_reduce`` — advance + segmented reduction over each
  vertex's neighbor list (Alg. 7 line 10), "internally performed by
  assigning segments to threads, warps or blocks depending on the size
  of the segment" — charged with the per-segment overhead that makes AR
  the paper's slowest variant.
* ``filter`` — stream compaction of a frontier by predicate.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import backend as _backend
from ..errors import FrontierError, GunrockError
from ..gpusim.cost_model import CostModel
from ..graph.csr import CSRGraph
from ..trace import span_phase
from .frontier import EdgeFrontier, Frontier

__all__ = ["GunrockContext", "compute", "advance", "neighbor_reduce", "filter_frontier"]


class GunrockContext:
    """Shared state for one algorithm run: the graph and its cost model."""

    def __init__(self, graph: CSRGraph, cost: Optional[CostModel] = None) -> None:
        self.graph = graph
        self.cost = cost if cost is not None else CostModel()

    def sync(self, name: str = "sync") -> None:
        """A global synchronization (kernel boundary)."""
        self.cost.charge_sync(name=name)


def compute(
    ctx: GunrockContext,
    frontier: Frontier,
    kernel: Callable[[np.ndarray], None],
    *,
    name: str,
    loop: str = "map",
    passes: int = 1,
    atomics: int = 0,
) -> None:
    """Run ``kernel(active_ids)`` as a parallel forall over the frontier.

    ``loop="serial"`` charges the warp lock-step serial-neighbor-loop
    model (``passes`` full neighbor sweeps per thread); ``loop="map"``
    charges a flat per-item kernel.  ``atomics`` counts global atomic
    operations the kernel issues (e.g. the colored-vertex counter of the
    atomics variant in Table II).
    """
    if loop not in ("map", "serial"):
        raise GunrockError(f"unknown compute loop kind {loop!r}")
    kernel(frontier.ids)
    with span_phase(ctx.cost.trace, f"compute:{name}"):
        if loop == "serial":
            ctx.cost.charge_serial_loop(
                frontier.degrees(ctx.graph), name=name, passes=passes
            )
        else:
            ctx.cost.charge_map(len(frontier), name=name)
        if atomics:
            ctx.cost.charge_atomics(atomics, name=f"{name}.atomics")


def advance(
    ctx: GunrockContext,
    frontier: Frontier,
    *,
    name: str = "advance",
) -> EdgeFrontier:
    """Generate the neighbor frontier of ``frontier`` (§III-B1).

    Each input vertex maps to its full neighbor list; the result keeps
    segment offsets so a segmented reduction can follow.
    """
    g = ctx.graph
    degs = frontier.degrees(g)
    total = int(degs.sum())
    seg = np.zeros(len(frontier) + 1, dtype=np.int64)
    np.cumsum(degs, out=seg[1:])
    if total:
        starts = np.repeat(g.offsets[frontier.ids], degs)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(seg[:-1], degs)
        pos = starts + ramp
        targets = g.indices[pos]
        sources = np.repeat(frontier.ids, degs)
    else:
        targets = np.empty(0, dtype=np.int64)
        sources = np.empty(0, dtype=np.int64)
    # Load-balanced edge-parallel kernel that also materializes the
    # frontier to memory (the overhead §V-B attributes to AR).
    with span_phase(ctx.cost.trace, f"advance:{name}"):
        ctx.cost.charge_edge_balanced(total, name=name, eff=1.5)
    san = ctx.cost.sanitizer
    if san is not None:
        with san.kernel(name) as k:
            # One thread per output edge slot writes its own slot.
            slots = np.arange(total, dtype=np.int64)
            k.write(f"edge_frontier@{name}", slots, lane=slots)
    return EdgeFrontier(sources, targets, seg, frontier)


_REDUCERS = {
    "max": (np.maximum, np.iinfo(np.int64).min),
    "min": (np.minimum, np.iinfo(np.int64).max),
    "sum": (np.add, 0),
}


def neighbor_reduce(
    ctx: GunrockContext,
    edge_frontier: EdgeFrontier,
    values: np.ndarray,
    *,
    op: str = "max",
    arg: bool = False,
    name: str = "neighbor_reduce",
) -> np.ndarray:
    """Segmented reduction of ``values[target]`` over each source vertex's
    neighbor segment (§III-B3).

    Returns one reduced value per origin-frontier vertex (the monoid
    identity for empty segments).  With ``arg=True`` returns instead the
    *target vertex id* attaining the extremum (needed by the AR variant,
    which colors the winning neighbor).
    """
    try:
        ufunc, identity = _REDUCERS[op]
    except KeyError:
        raise GunrockError(f"unknown reduction {op!r}") from None
    seg = edge_frontier.segment_offsets
    nseg = len(seg) - 1
    vals = values[edge_frontier.targets]
    with span_phase(ctx.cost.trace, f"neighbor_reduce:{name}"):
        ctx.cost.charge_segmented_reduce(
            edge_frontier.num_edges, nseg, name=name
        )
    san = ctx.cost.sanitizer
    if san is not None:
        with san.kernel(name) as k:
            # Each edge thread reads its target's value and combines it
            # into the segment slot — a declared cross-lane reduction.
            k.read(f"values@{name}", edge_frontier.targets)
            if edge_frontier.num_edges:
                seg_lanes = np.repeat(
                    np.arange(nseg, dtype=np.int64), np.diff(seg)
                )
                k.write(f"reduce_out@{name}", seg_lanes, reduction=True)
    if edge_frontier.num_edges == 0:
        out = np.full(nseg, identity, dtype=values.dtype)
        return out
    seg_of = np.repeat(np.arange(nseg, dtype=np.int64), np.diff(seg))
    if not arg:
        out = np.full(nseg, identity, dtype=values.dtype)
        _backend.current().scatter_reduce(out, seg_of, vals, ufunc)
        return out
    if op not in ("max", "min"):
        raise GunrockError("arg reduction requires max or min")
    # Arg-reduction: order so the extremal element of each segment comes
    # first, then take each segment's first target id.
    key = vals if op == "min" else -vals
    order = np.lexsort((edge_frontier.targets, key, seg_of))
    sorted_seg = seg_of[order]
    first = np.ones(len(order), dtype=bool)
    first[1:] = sorted_seg[1:] != sorted_seg[:-1]
    winners_seg = sorted_seg[first]
    winners_tgt = edge_frontier.targets[order][first]
    out = np.full(nseg, -1, dtype=np.int64)
    out[winners_seg] = winners_tgt
    return out


def filter_frontier(
    ctx: GunrockContext,
    frontier: Frontier,
    keep: np.ndarray,
    *,
    name: str = "filter",
) -> Frontier:
    """Compact a frontier to the entries where ``keep`` is true.

    ``keep`` is aligned with ``frontier.ids``.  Charged as a map kernel
    (stream compaction).
    """
    if len(keep) != len(frontier):
        raise FrontierError("keep mask must align with the frontier")
    with span_phase(ctx.cost.trace, f"filter:{name}"):
        ctx.cost.charge_map(len(frontier), name=name)
    kept = frontier.ids[
        _backend.current().frontier_compact(np.asarray(keep, dtype=bool))
    ]
    san = ctx.cost.sanitizer
    if san is not None:
        with san.kernel(name) as k:
            # Stream compaction: each surviving element lands in its own
            # (prefix-sum-assigned) output slot.
            slots = np.arange(len(kept), dtype=np.int64)
            k.write(f"compacted@{name}", slots, lane=slots)
    return Frontier(kept, _trusted=True)
