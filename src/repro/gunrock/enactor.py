"""The enactor: Gunrock's bulk-synchronous iteration driver.

"The Gunrock enactor iteratively calls this compute operator until all
vertices are colored" (§IV-B1).  :class:`Enactor` owns the iteration
loop: it re-invokes a user-supplied iteration body until the body
signals completion, charging one global synchronization per iteration
(the kernel boundary between bulk-synchronous steps) and enforcing an
iteration cap as a safety net.
"""

from __future__ import annotations

from typing import Callable

from ..errors import GunrockError
from ..trace import span_phase, tag_iteration
from .operators import GunrockContext

__all__ = ["Enactor"]


class Enactor:
    """Bulk-synchronous iteration driver for one primitive run."""

    def __init__(self, ctx: GunrockContext, *, max_iterations: int = 0) -> None:
        """``max_iterations=0`` derives a cap of ``2n + 16`` from the graph
        (no correct coloring loop needs more than one iteration per
        color, and colors never exceed n)."""
        self.ctx = ctx
        n = ctx.graph.num_vertices
        self.max_iterations = max_iterations or (2 * n + 16)
        self.iteration = 0

    def run(self, body: Callable[[int], bool]) -> int:
        """Call ``body(iteration)`` until it returns False (= stop).

        Returns the number of iterations executed.  Raises
        :class:`GunrockError` if the cap is hit — that means the
        primitive failed to converge, which is always a bug.
        """
        self.iteration = 0
        trace = self.ctx.cost.trace
        while True:
            if self.iteration >= self.max_iterations:
                raise GunrockError(
                    f"enactor exceeded {self.max_iterations} iterations "
                    "without converging"
                )
            tag_iteration(trace, self.iteration)
            with span_phase(trace, "superstep"):
                keep_going = body(self.iteration)
                self.ctx.sync(name="enactor_sync")
            self.iteration += 1
            if not keep_going:
                return self.iteration
