"""Graph substrate: CSR container, builders, generators, I/O, stats.

Public surface::

    from repro.graph import CSRGraph, from_edges
    from repro.graph.generators import rgg, grid2d, suitesparse
"""

from .build import (
    complete_graph,
    induced_subgraph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_arcs,
    from_edges,
    from_scipy,
    path_graph,
    star_graph,
)
from .csr import CSRGraph
from .partition import (
    DevicePartition,
    GraphPartition,
    block_partition,
    edge_cut_partition,
    partition_graph,
)
from .stats import GraphStats, degree_histogram, graph_stats
from .traversal import (
    bfs_levels,
    connected_components,
    eccentricity,
    estimate_diameter,
    largest_component,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_arcs",
    "from_adjacency",
    "from_scipy",
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "induced_subgraph",
    "DevicePartition",
    "GraphPartition",
    "block_partition",
    "edge_cut_partition",
    "partition_graph",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "bfs_levels",
    "eccentricity",
    "estimate_diameter",
    "connected_components",
    "largest_component",
]
