"""Deterministic graph partitioners for the multi-device cost model.

A distributed coloring run (``repro.core.dist``) gives each simulated
device one :class:`DevicePartition`: the vertices it *owns*, a local
CSR over a compact ``[owned | ghost]`` index space, and the ghost maps
needed to mirror boundary colors after every halo exchange — the
partitioned-CSR layout of Bogle & Slota's distributed coloring work.

Two partitioners are provided, both pure functions of the graph and
the device count (no RNG anywhere, so a partition is byte-stable
across runs, seeds, and host machines):

``block``
    1D contiguous block partition: device ``d`` owns global vertices
    ``[d*n//k, (d+1)*n//k)``.  Matches the natural ordering of the
    generator graphs (RGG neighbors are id-close, so block cuts few
    edges there).

``edge_cut``
    Greedy linear deterministic partitioning (LDG-style): vertices are
    placed in (degree-descending, id-ascending) order onto the part
    with the most already-placed neighbors, scaled by remaining
    capacity; ties break to the lowest part id.

Invariants (locked down by ``tests/test_partition_properties.py``):
every vertex is owned by exactly one device; ghost ids are exactly the
remote endpoints of cut arcs; local-to-global maps are consistent
inverses; and :meth:`GraphPartition.reassemble` rebuilds the input CSR
byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import GraphError
from .build import from_arcs
from .csr import CSRGraph

__all__ = [
    "DevicePartition",
    "GraphPartition",
    "block_partition",
    "edge_cut_partition",
    "partition_graph",
    "PARTITION_METHODS",
]

#: Partitioner names accepted by :func:`partition_graph`.
PARTITION_METHODS = ("block", "edge_cut")


@dataclass(frozen=True)
class DevicePartition:
    """One device's share of a partitioned graph.

    The local index space is compact: slots ``[0, num_local)`` are the
    owned vertices (``local_ids``, ascending global ids) and slots
    ``[num_local, num_local + num_ghost)`` are the ghosts
    (``ghost_ids``, ascending).  ``local_graph`` is a CSR over that
    space whose rows are populated for owned vertices only — ghost
    rows are empty, mirroring a real partitioned CSR where remote
    adjacency is never stored.
    """

    device: int
    local_ids: np.ndarray  # int64[num_local], ascending global ids
    ghost_ids: np.ndarray  # int64[num_ghost], ascending global ids
    local_graph: CSRGraph  # rows over the [owned | ghost] space
    boundary: np.ndarray  # bool[num_local]: owns a cut arc

    @property
    def num_local(self) -> int:
        """Number of vertices this device owns."""
        return len(self.local_ids)

    @property
    def num_ghost(self) -> int:
        """Number of ghost (remote-neighbor) vertices mirrored here."""
        return len(self.ghost_ids)

    @property
    def global_ids(self) -> np.ndarray:
        """Compact-slot → global-id map (owned then ghost)."""
        return np.concatenate([self.local_ids, self.ghost_ids])

    def to_local(self, num_vertices: int) -> np.ndarray:
        """Global-id → compact-slot map (``-1`` for absent vertices)."""
        out = np.full(num_vertices, -1, dtype=np.int64)
        out[self.local_ids] = np.arange(self.num_local, dtype=np.int64)
        out[self.ghost_ids] = self.num_local + np.arange(
            self.num_ghost, dtype=np.int64
        )
        return out


@dataclass(frozen=True)
class GraphPartition:
    """A full k-way partition: per-device parts plus the owner map."""

    graph: CSRGraph
    method: str
    owner: np.ndarray  # int64[n]: owning device per global vertex
    parts: Tuple[DevicePartition, ...]

    @property
    def num_devices(self) -> int:
        """Number of parts (devices)."""
        return len(self.parts)

    @property
    def cut_arcs(self) -> int:
        """Arcs whose endpoints live on different devices (each
        direction of an undirected edge counted separately)."""
        src, dst = self.graph.arcs()
        return int(np.count_nonzero(self.owner[src] != self.owner[dst]))

    def reassemble(self) -> CSRGraph:
        """Rebuild the global CSR from the per-device local graphs.

        The property suite asserts the result equals the input graph
        byte for byte — the partition loses nothing.
        """
        srcs, dsts = [], []
        for part in self.parts:
            g = part.local_graph
            ids = part.global_ids
            loc_src = np.repeat(
                np.arange(g.num_vertices, dtype=np.int64), g.degrees
            )
            srcs.append(ids[loc_src])
            dsts.append(ids[g.indices])
        src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
        dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
        return from_arcs(
            src,
            dst,
            self.graph.num_vertices,
            undirected=self.graph.undirected,
            name=self.graph.name,
        )


def block_partition(graph: CSRGraph, num_devices: int) -> np.ndarray:
    """1D contiguous block owner map: device ``d`` owns global ids
    ``[d*n//k, (d+1)*n//k)``."""
    _check_k(graph, num_devices)
    n = graph.num_vertices
    bounds = np.array(
        [d * n // num_devices for d in range(num_devices + 1)], dtype=np.int64
    )
    owner = np.repeat(
        np.arange(num_devices, dtype=np.int64), np.diff(bounds)
    )
    return owner


def edge_cut_partition(graph: CSRGraph, num_devices: int) -> np.ndarray:
    """Greedy deterministic (LDG-style) owner map minimizing cut arcs.

    Vertices are placed in (degree-descending, id-ascending) order;
    each goes to the part with the most already-placed neighbors,
    weighted by remaining capacity ``1 - size/capacity``; ties break
    to the lowest part id.  Pure function of the graph — no RNG.
    """
    _check_k(graph, num_devices)
    n = graph.num_vertices
    owner = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_devices, dtype=np.int64)
    capacity = max(1.0, np.ceil(n / num_devices))
    # Stable sort on -degree keeps the id-ascending tiebreak.
    order = np.argsort(-graph.degrees, kind="stable")
    offsets, indices = graph.offsets, graph.indices
    for v in order:
        nbrs = indices[offsets[v] : offsets[v + 1]]
        placed = owner[nbrs]
        placed = placed[placed >= 0]
        affinity = np.bincount(placed, minlength=num_devices).astype(np.float64)
        score = affinity * (1.0 - sizes / capacity)
        # Full parts are ineligible unless every part is full.
        open_parts = sizes < capacity
        if open_parts.any():
            score[~open_parts] = -np.inf
        d = int(np.argmax(score))  # argmax takes the lowest index on ties
        owner[v] = d
        sizes[d] += 1
    return owner


def partition_graph(
    graph: CSRGraph, num_devices: int, *, method: str = "block"
) -> GraphPartition:
    """Partition ``graph`` across ``num_devices`` simulated devices.

    Returns a :class:`GraphPartition` with one :class:`DevicePartition`
    per device.  Deterministic: equal inputs yield byte-equal owner
    maps, local CSRs, and ghost tables.
    """
    if method not in PARTITION_METHODS:
        raise GraphError(
            f"unknown partition method {method!r}; "
            f"expected one of {PARTITION_METHODS}"
        )
    if method == "block":
        owner = block_partition(graph, num_devices)
    else:
        owner = edge_cut_partition(graph, num_devices)
    n = graph.num_vertices
    src, dst = graph.arcs()
    parts = []
    for d in range(num_devices):
        local_ids = np.flatnonzero(owner == d)
        mine = owner[src] == d
        s, t = src[mine], dst[mine]
        remote = owner[t] != d
        ghost_ids = np.unique(t[remote])
        to_local = np.full(n, -1, dtype=np.int64)
        to_local[local_ids] = np.arange(len(local_ids), dtype=np.int64)
        to_local[ghost_ids] = len(local_ids) + np.arange(
            len(ghost_ids), dtype=np.int64
        )
        local_graph = from_arcs(
            to_local[s],
            to_local[t],
            len(local_ids) + len(ghost_ids),
            undirected=False,
            name=f"{graph.name or 'graph'}@{d}/{num_devices}",
        )
        boundary = np.zeros(len(local_ids), dtype=bool)
        boundary[to_local[s[remote]]] = True
        parts.append(
            DevicePartition(
                device=d,
                local_ids=local_ids,
                ghost_ids=ghost_ids,
                local_graph=local_graph,
                boundary=boundary,
            )
        )
    return GraphPartition(
        graph=graph, method=method, owner=owner, parts=tuple(parts)
    )


def _check_k(graph: CSRGraph, num_devices: int) -> None:
    if num_devices < 1:
        raise GraphError(f"num_devices must be >= 1, got {num_devices}")
    if graph.num_vertices and num_devices > graph.num_vertices:
        raise GraphError(
            f"cannot split {graph.num_vertices} vertices across "
            f"{num_devices} devices"
        )
