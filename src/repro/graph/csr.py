"""Compressed-sparse-row graph container.

Both graph frameworks in the paper (Gunrock and GraphBLAS) consume the
same input representation: a CSR adjacency structure — one array of
row offsets and one array of neighbor (column) indices (§IV of the
paper).  :class:`CSRGraph` is that representation, immutable and
validated at construction so every downstream kernel can rely on its
invariants:

* ``offsets`` has length ``n + 1``, is non-decreasing, starts at 0 and
  ends at ``num_arcs``;
* ``indices`` holds vertex ids in ``[0, n)``;
* per-row neighbor lists are sorted and duplicate-free;
* no self loops;
* for undirected graphs the arc set is symmetric (``(u,v)`` iff ``(v,u)``).

"Edges" follows the paper's Table I convention: for an undirected graph
an edge {u,v} is counted once (``num_edges``), while the CSR stores both
arcs (``num_arcs == 2 * num_edges``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable graph in compressed-sparse-row form.

    Parameters
    ----------
    offsets:
        ``int64[n+1]`` row-offset array.
    indices:
        ``int32/int64[num_arcs]`` neighbor array.
    undirected:
        Declares (and, under ``validate=True``, checks) arc symmetry.
    name:
        Optional human-readable label used by the harness and reprs.
    validate:
        When true (default), verify every structural invariant.  Internal
        constructors that build provably-valid CSR pass ``False``.
    """

    __slots__ = ("_offsets", "_indices", "_undirected", "_name", "_degrees")

    def __init__(
        self,
        offsets: np.ndarray,
        indices: np.ndarray,
        *,
        undirected: bool = True,
        name: str = "",
        validate: bool = True,
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if validate:
            _validate_csr(offsets, indices, undirected)
        self._offsets = offsets
        self._indices = indices
        self._undirected = bool(undirected)
        self._name = name
        self._degrees: Optional[np.ndarray] = None
        self._offsets.setflags(write=False)
        self._indices.setflags(write=False)

    # -- basic properties -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._offsets) - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (CSR entries)."""
        return len(self._indices)

    @property
    def num_edges(self) -> int:
        """Number of edges in the Table I sense.

        For undirected graphs each edge is stored as two arcs, so this is
        ``num_arcs // 2``; for directed graphs it equals ``num_arcs``.
        """
        return self.num_arcs // 2 if self._undirected else self.num_arcs

    @property
    def undirected(self) -> bool:
        """Whether the arc set is symmetric."""
        return self._undirected

    @property
    def name(self) -> str:
        """Dataset label (may be empty)."""
        return self._name

    @property
    def offsets(self) -> np.ndarray:
        """Read-only ``int64[n+1]`` row-offset array."""
        return self._offsets

    @property
    def indices(self) -> np.ndarray:
        """Read-only ``int64[num_arcs]`` neighbor array."""
        return self._indices

    # -- derived structure -------------------------------------------------

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (cached, read-only)."""
        if self._degrees is None:
            deg = np.diff(self._offsets)
            deg.setflags(write=False)
            self._degrees = deg
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Maximum vertex degree (0 for the empty graph)."""
        return int(self.degrees.max()) if self.num_vertices else 0

    @property
    def avg_degree(self) -> float:
        """Average out-degree (arcs / vertices), as reported in Table I."""
        return self.num_arcs / self.num_vertices if self.num_vertices else 0.0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor list of vertex ``v`` (a read-only view)."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )
        return self._indices[self._offsets[v] : self._offsets[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of a single vertex ``v``."""
        return len(self.neighbors(v))

    def has_arc(self, u: int, v: int) -> bool:
        """True if the arc ``u → v`` is present (binary search, O(log d))."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def arcs(self) -> Tuple[np.ndarray, np.ndarray]:
        """All arcs as parallel ``(sources, targets)`` arrays."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        return src, self._indices.copy()

    def edge_list(self) -> np.ndarray:
        """Unique undirected edges as an ``(m, 2)`` array with ``u < v``.

        For a directed graph this returns every arc as a row instead.
        """
        src, dst = self.arcs()
        if not self._undirected:
            return np.column_stack([src, dst])
        keep = src < dst
        return np.column_stack([src[keep], dst[keep]])

    # -- conversion ---------------------------------------------------------

    def to_scipy(self):
        """The adjacency matrix as a ``scipy.sparse.csr_matrix`` of 1s."""
        from scipy.sparse import csr_matrix

        n = self.num_vertices
        data = np.ones(self.num_arcs, dtype=np.int8)
        return csr_matrix(
            (data, self._indices, self._offsets),
            shape=(n, n),
        )

    def reverse(self) -> "CSRGraph":
        """The transpose graph (arcs flipped).

        For undirected graphs this is the graph itself (a cheap copy that
        shares arrays); for directed graphs a new CSC→CSR conversion.
        """
        if self._undirected:
            return CSRGraph(
                self._offsets,
                self._indices,
                undirected=True,
                name=self._name,
                validate=False,
            )
        from .build import from_arcs

        src, dst = self.arcs()
        return from_arcs(
            dst, src, self.num_vertices, undirected=False, name=self._name
        )

    # -- dunder -------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self._undirected == other._undirected
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # content hash; graphs are immutable
        return hash(
            (
                self._undirected,
                self._offsets.tobytes(),
                self._indices.tobytes(),
            )
        )

    def __repr__(self) -> str:
        kind = "undirected" if self._undirected else "directed"
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<CSRGraph{label} {kind} n={self.num_vertices} "
            f"m={self.num_edges} avg_deg={self.avg_degree:.2f}>"
        )


def _validate_csr(offsets: np.ndarray, indices: np.ndarray, undirected: bool) -> None:
    """Raise :class:`GraphError` unless the arrays form a canonical CSR."""
    if offsets.ndim != 1 or len(offsets) < 1:
        raise GraphError("offsets must be a 1-D array of length n+1 >= 1")
    if indices.ndim != 1:
        raise GraphError("indices must be a 1-D array")
    if offsets[0] != 0:
        raise GraphError("offsets[0] must be 0")
    if offsets[-1] != len(indices):
        raise GraphError(
            f"offsets[-1]={offsets[-1]} must equal len(indices)={len(indices)}"
        )
    if np.any(np.diff(offsets) < 0):
        raise GraphError("offsets must be non-decreasing")
    n = len(offsets) - 1
    if len(indices):
        if indices.min() < 0 or indices.max() >= n:
            raise GraphError("neighbor indices out of range")
    # Sorted, duplicate-free rows: within a row, strictly increasing.
    if len(indices) > 1:
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        same_row = row_of[1:] == row_of[:-1]
        if np.any(same_row & (np.diff(indices) <= 0)):
            raise GraphError("rows must be sorted and duplicate-free")
    # No self-loops.
    if len(indices):
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        if np.any(row_of == indices):
            raise GraphError("self-loops are not allowed")
    if undirected and len(indices):
        # Symmetry: sort (src,dst) and (dst,src) arc sets and compare.
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        fwd = row_of * n + indices
        bwd = indices * n + row_of
        if not np.array_equal(np.sort(fwd), np.sort(bwd)):
            raise GraphError("declared undirected but arc set is asymmetric")
