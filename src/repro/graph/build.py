"""Construction of :class:`~repro.graph.csr.CSRGraph` from raw edge data.

The paper's datasets are preprocessed the same way (§V-A): "All datasets
have been converted to undirected graphs, and self-loops and duplicated
edges are removed."  :func:`from_edges` applies exactly that pipeline:
symmetrize, drop self-loops, deduplicate, sort rows — all vectorized.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_arcs",
    "from_adjacency",
    "from_scipy",
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "induced_subgraph",
]


def from_edges(
    edges: Union[np.ndarray, Sequence],
    num_vertices: Optional[int] = None,
    *,
    name: str = "",
) -> CSRGraph:
    """Build an undirected :class:`CSRGraph` from an edge list.

    ``edges`` is an ``(m, 2)`` array (or any sequence of pairs).  The
    result is symmetrized, self-loops and duplicate edges are removed,
    and rows are sorted — matching the paper's dataset preprocessing.

    ``num_vertices`` defaults to ``max vertex id + 1``; pass it explicitly
    to keep isolated trailing vertices.
    """
    e = np.asarray(edges, dtype=np.int64)
    if e.size == 0:
        e = e.reshape(0, 2)
    if e.ndim != 2 or e.shape[1] != 2:
        raise GraphError("edges must be an (m, 2) array of vertex pairs")
    if num_vertices is None:
        num_vertices = int(e.max()) + 1 if len(e) else 0
    src = np.concatenate([e[:, 0], e[:, 1]])
    dst = np.concatenate([e[:, 1], e[:, 0]])
    return from_arcs(src, dst, num_vertices, undirected=True, name=name)


def from_arcs(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    undirected: bool,
    name: str = "",
) -> CSRGraph:
    """Build a graph from parallel source/target arrays.

    Self-loops and duplicate arcs are removed.  When ``undirected`` is
    true the caller must supply both arc directions (as
    :func:`from_edges` does); symmetry is then guaranteed by dedup.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError("src/dst must be 1-D arrays of equal length")
    if num_vertices < 0:
        raise GraphError("num_vertices must be non-negative")
    if len(src):
        lo = min(src.min(), dst.min())
        hi = max(src.max(), dst.max())
        if lo < 0 or hi >= num_vertices:
            raise GraphError(
                f"vertex ids must lie in [0, {num_vertices}); saw [{lo}, {hi}]"
            )
    keep = src != dst  # drop self-loops
    src, dst = src[keep], dst[keep]
    # Sort by (src, dst) then dedup — yields sorted, unique CSR rows.
    key = src * num_vertices + dst
    order = np.argsort(key, kind="stable")
    key = key[order]
    uniq = np.ones(len(key), dtype=bool)
    uniq[1:] = key[1:] != key[:-1]
    src, dst = src[order][uniq], dst[order][uniq]
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_vertices), out=offsets[1:])
    return CSRGraph(offsets, dst, undirected=undirected, name=name, validate=False)


def from_adjacency(adj: Union[np.ndarray, Sequence], *, name: str = "") -> CSRGraph:
    """Build an undirected graph from a dense 0/1 adjacency matrix.

    The matrix is symmetrized (an entry in either triangle creates the
    edge) and the diagonal is ignored.  Intended for tests and tiny
    examples, not large graphs.
    """
    a = np.asarray(adj)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise GraphError("adjacency must be a square matrix")
    src, dst = np.nonzero(a)
    return from_edges(
        np.column_stack([src, dst]), num_vertices=a.shape[0], name=name
    )


def from_scipy(mat, *, name: str = "") -> CSRGraph:
    """Build an undirected graph from any ``scipy.sparse`` matrix.

    Nonzero pattern defines edges; values are discarded (the paper's
    algorithms only use graph structure).
    """
    coo = mat.tocoo()
    if coo.shape[0] != coo.shape[1]:
        raise GraphError("sparse adjacency must be square")
    edges = np.column_stack([coo.row.astype(np.int64), coo.col.astype(np.int64)])
    return from_edges(edges, num_vertices=coo.shape[0], name=name)


# -- tiny canonical graphs (test fixtures & examples) -------------------------


def empty_graph(n: int, *, name: str = "empty") -> CSRGraph:
    """``n`` isolated vertices, no edges."""
    return CSRGraph(
        np.zeros(n + 1, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        undirected=True,
        name=name,
        validate=False,
    )


def complete_graph(n: int, *, name: str = "complete") -> CSRGraph:
    """The complete graph K_n (chromatic number exactly n)."""
    if n <= 1:
        return empty_graph(max(n, 0), name=name)
    src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
    dst = np.concatenate(
        [np.delete(np.arange(n, dtype=np.int64), v) for v in range(n)]
    )
    return from_arcs(src, dst, n, undirected=True, name=name)


def path_graph(n: int, *, name: str = "path") -> CSRGraph:
    """The path P_n (chromatic number 2 for n >= 2)."""
    if n <= 1:
        return empty_graph(max(n, 0), name=name)
    i = np.arange(n - 1, dtype=np.int64)
    return from_edges(np.column_stack([i, i + 1]), num_vertices=n, name=name)


def cycle_graph(n: int, *, name: str = "cycle") -> CSRGraph:
    """The cycle C_n (chromatic number 2 if n even else 3)."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    i = np.arange(n, dtype=np.int64)
    return from_edges(np.column_stack([i, (i + 1) % n]), num_vertices=n, name=name)


def star_graph(n_leaves: int, *, name: str = "star") -> CSRGraph:
    """A star with one hub and ``n_leaves`` leaves (chromatic number 2)."""
    if n_leaves < 0:
        raise GraphError("n_leaves must be non-negative")
    if n_leaves == 0:
        return empty_graph(1, name=name)
    hub = np.zeros(n_leaves, dtype=np.int64)
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    return from_edges(
        np.column_stack([hub, leaves]), num_vertices=n_leaves + 1, name=name
    )


def induced_subgraph(graph: CSRGraph, vertices) -> "tuple[CSRGraph, np.ndarray]":
    """The subgraph induced on ``vertices``.

    Accepts a boolean mask or an id array; returns ``(subgraph, ids)``
    where ``ids[i]`` is the original id of subgraph vertex ``i``
    (ids are sorted ascending, so relative order is preserved).
    """
    vertices = np.asarray(vertices)
    if vertices.dtype == bool:
        if len(vertices) != graph.num_vertices:
            raise GraphError("boolean mask must cover every vertex")
        keep = vertices
    else:
        keep = np.zeros(graph.num_vertices, dtype=bool)
        ids_in = vertices.astype(np.int64)
        if len(ids_in) and (
            ids_in.min() < 0 or ids_in.max() >= graph.num_vertices
        ):
            raise GraphError("subgraph vertex id out of range")
        keep[ids_in] = True
    ids = np.flatnonzero(keep).astype(np.int64)
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[ids] = np.arange(len(ids), dtype=np.int64)
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    sel = keep[src] & keep[graph.indices]
    sub = from_arcs(
        remap[src[sel]],
        remap[graph.indices[sel]],
        len(ids),
        undirected=graph.undirected,
        name=graph.name,
    )
    return sub, ids
