"""Graph I/O: MatrixMarket, plain edge lists, and binary snapshots."""

from .binary import load_npz, save_npz
from .edgelist import read_edgelist, write_edgelist
from .matrix_market import read_matrix_market, write_matrix_market

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "read_edgelist",
    "write_edgelist",
    "save_npz",
    "load_npz",
]
