"""Binary (``.npz``) snapshot format for CSR graphs.

Saving the validated CSR arrays directly skips re-parsing and
re-validation, which matters when the harness re-runs a large sweep.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ...errors import GraphFormatError
from ..csr import CSRGraph

__all__ = ["save_npz", "load_npz"]

_FORMAT_VERSION = 1


def save_npz(graph: CSRGraph, path: Union[str, Path]) -> None:
    """Serialize ``graph`` to a compressed ``.npz`` snapshot."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        offsets=graph.offsets,
        indices=graph.indices,
        undirected=np.bool_(graph.undirected),
        name=np.str_(graph.name),
    )


def load_npz(path: Union[str, Path]) -> CSRGraph:
    """Load a snapshot written by :func:`save_npz` (validates on load)."""
    try:
        with np.load(path, allow_pickle=False) as z:
            version = int(z["version"])
            if version != _FORMAT_VERSION:
                raise GraphFormatError(
                    f"unsupported snapshot version {version}"
                )
            return CSRGraph(
                z["offsets"],
                z["indices"],
                undirected=bool(z["undirected"]),
                name=str(z["name"]),
                validate=True,
            )
    except KeyError as exc:
        raise GraphFormatError(f"snapshot missing field {exc}") from None
