"""MatrixMarket coordinate-format reader/writer.

The paper's datasets ship as MatrixMarket ``.mtx`` files from the
SuiteSparse collection; this module provides a from-scratch reader for
the subset used by graph work (``matrix coordinate`` with ``pattern``,
``real`` or ``integer`` fields, ``general`` or ``symmetric`` symmetry)
and a symmetric-pattern writer, so users can run the library on real
SuiteSparse downloads when they have them.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ...errors import GraphFormatError
from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["read_matrix_market", "write_matrix_market"]

_VALID_FIELDS = {"pattern", "real", "integer", "complex"}
_VALID_SYMMETRY = {"general", "symmetric", "skew-symmetric", "hermitian"}


def read_matrix_market(path_or_file: Union[str, Path, TextIO]) -> CSRGraph:
    """Read an ``.mtx`` file as an undirected graph.

    Values are discarded (only the nonzero pattern matters for coloring);
    both triangles are accepted; self-loops and duplicates are removed by
    construction, mirroring the paper's preprocessing.
    """
    close = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file, "r")
        close = True
    else:
        fh = path_or_file
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError("missing %%MatrixMarket header")
        parts = header.strip().split()
        if len(parts) < 5:
            raise GraphFormatError(f"malformed header: {header.strip()!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise GraphFormatError(
                "only 'matrix coordinate' MatrixMarket files are supported"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in _VALID_FIELDS:
            raise GraphFormatError(f"unknown field {field!r}")
        if symmetry not in _VALID_SYMMETRY:
            raise GraphFormatError(f"unknown symmetry {symmetry!r}")
        # Skip comments, read the size line.
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            nrows, ncols, nnz = (int(x) for x in line.split())
        except ValueError:
            raise GraphFormatError(f"bad size line: {line.strip()!r}") from None
        if nrows != ncols:
            raise GraphFormatError("adjacency matrix must be square")
        body = fh.read()
    finally:
        if close:
            fh.close()

    if nnz == 0:
        return from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=nrows)
    try:
        data = np.loadtxt(io.StringIO(body), ndmin=2)
    except ValueError as exc:
        raise GraphFormatError(f"unparsable entries: {exc}") from None
    if data.shape[0] != nnz:
        raise GraphFormatError(
            f"expected {nnz} entries, found {data.shape[0]}"
        )
    min_cols = 2 if field == "pattern" else 3
    if data.shape[1] < min_cols:
        raise GraphFormatError(
            f"{field} entries need at least {min_cols} columns"
        )
    rows = data[:, 0].astype(np.int64) - 1  # 1-based → 0-based
    cols = data[:, 1].astype(np.int64) - 1
    if rows.min(initial=0) < 0 or cols.min(initial=0) < 0:
        raise GraphFormatError("indices must be 1-based positive")
    if rows.max(initial=-1) >= nrows or cols.max(initial=-1) >= ncols:
        raise GraphFormatError("entry index exceeds declared size")
    return from_edges(
        np.column_stack([rows, cols]), num_vertices=nrows
    )


def write_matrix_market(
    graph: CSRGraph, path_or_file: Union[str, Path, TextIO], *, comment: str = ""
) -> None:
    """Write ``graph`` as a symmetric pattern ``.mtx`` file.

    Only the lower triangle is written (MatrixMarket symmetric
    convention); :func:`read_matrix_market` round-trips it exactly.
    """
    close = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file, "w")
        close = True
    else:
        fh = path_or_file
    try:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        if comment:
            for ln in comment.splitlines():
                fh.write(f"% {ln}\n")
        edges = graph.edge_list()
        n = graph.num_vertices
        fh.write(f"{n} {n} {len(edges)}\n")
        # Symmetric format stores the lower triangle: row >= col.
        for u, v in edges:  # edge_list gives u < v
            fh.write(f"{v + 1} {u + 1}\n")
    finally:
        if close:
            fh.close()
