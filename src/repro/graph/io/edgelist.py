"""Plain-text edge-list reader/writer.

One edge per line as ``u v`` (whitespace separated, 0-based); ``#``
comment lines are skipped.  This is the lowest-friction way to get a
user's own graph into the library.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, TextIO, Union

import numpy as np

from ...errors import GraphFormatError
from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["read_edgelist", "write_edgelist"]


def read_edgelist(
    path_or_file: Union[str, Path, TextIO],
    *,
    num_vertices: Optional[int] = None,
) -> CSRGraph:
    """Read a 0-based whitespace-separated edge list as an undirected graph."""
    close = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file, "r")
        close = True
    else:
        fh = path_or_file
    edges = []
    try:
        for lineno, line in enumerate(fh, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"line {lineno}: expected 'u v', got {line.strip()!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphFormatError(
                    f"line {lineno}: non-integer vertex id in {line.strip()!r}"
                ) from None
            if u < 0 or v < 0:
                raise GraphFormatError(f"line {lineno}: negative vertex id")
            edges.append((u, v))
    finally:
        if close:
            fh.close()
    arr = np.asarray(edges, dtype=np.int64) if edges else np.empty((0, 2), np.int64)
    return from_edges(arr, num_vertices=num_vertices)


def write_edgelist(graph: CSRGraph, path_or_file: Union[str, Path, TextIO]) -> None:
    """Write each undirected edge once as ``u v`` (u < v)."""
    close = False
    if isinstance(path_or_file, (str, Path)):
        fh: TextIO = open(path_or_file, "w")
        close = True
    else:
        fh = path_or_file
    try:
        fh.write(f"# vertices: {graph.num_vertices}\n")
        for u, v in graph.edge_list():
            fh.write(f"{u} {v}\n")
    finally:
        if close:
            fh.close()
