"""Dataset statistics in the shape of the paper's Table I.

Table I reports, per dataset: vertex count, edge count, average degree,
diameter (exact for small graphs, sampled-BFS estimate flagged with an
asterisk otherwise), and a type tag (real/generated × undirected/
directed).  :func:`graph_stats` computes the same row for any
:class:`CSRGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .._rng import RngLike
from .csr import CSRGraph
from .traversal import connected_components, estimate_diameter

__all__ = ["GraphStats", "graph_stats", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """One Table I row computed from an actual graph."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    diameter_estimate: int
    diameter_is_estimate: bool
    num_components: int
    type_tag: str = ""

    def as_row(self) -> dict:
        """Render as a plain dict for the table emitters."""
        diam = f"{self.diameter_estimate}"
        if self.diameter_is_estimate:
            diam += "*"
        return {
            "Dataset": self.name,
            "Vertices": self.num_vertices,
            "Edges": self.num_edges,
            "Avg. Degree": round(self.avg_degree, 2),
            "Diameter": diam,
            "Type": self.type_tag,
        }


#: Above this vertex count, diameters are sampled (Table I's ``*`` rule).
EXACT_DIAMETER_LIMIT = 2048


def graph_stats(
    graph: CSRGraph,
    *,
    type_tag: str = "",
    diameter_samples: int = 64,
    rng: RngLike = None,
) -> GraphStats:
    """Compute the Table I row for ``graph``.

    For graphs with at most :data:`EXACT_DIAMETER_LIMIT` vertices the
    diameter is exact (eccentricity of every vertex); larger graphs use
    the paper's sampled estimate and the row is flagged with ``*``.
    """
    n = graph.num_vertices
    estimate = n > EXACT_DIAMETER_LIMIT
    samples = diameter_samples if estimate else max(n, 1)
    diam = estimate_diameter(graph, num_samples=samples, rng=rng) if n else 0
    ncc, _ = connected_components(graph) if n else (0, None)
    return GraphStats(
        name=graph.name or "unnamed",
        num_vertices=n,
        num_edges=graph.num_edges,
        avg_degree=graph.avg_degree,
        max_degree=graph.max_degree,
        diameter_estimate=diam,
        diameter_is_estimate=estimate,
        num_components=ncc,
        type_tag=type_tag,
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Counts of vertices by degree: ``hist[d]`` = #vertices of degree d."""
    if graph.num_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.degrees, minlength=graph.max_degree + 1)
