"""Scale-free / power-law graph generators.

§VI of the paper calls out power-law graphs as future work: "With power
law graphs, it is possible that a random weight initialization would
perform worse than largest-degree first."  The ablation benchmark
``ablate.ordering`` runs that experiment on these generators.
"""

from __future__ import annotations

import numpy as np

from ..._rng import RngLike, ensure_rng
from ...errors import GeneratorError
from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["barabasi_albert", "rmat"]


def barabasi_albert(
    n: int,
    m_attach: int,
    *,
    rng: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Barabási–Albert preferential attachment.

    Starts from a clique on ``m_attach + 1`` vertices; each new vertex
    attaches to ``m_attach`` existing vertices sampled proportionally to
    degree (implemented with the standard repeated-endpoint trick: sample
    uniformly from the running edge-endpoint list).
    """
    if m_attach < 1:
        raise GeneratorError("m_attach must be >= 1")
    if n < m_attach + 1:
        raise GeneratorError("n must be >= m_attach + 1")
    gen = ensure_rng(rng)
    seed_n = m_attach + 1
    # Seed clique endpoints.
    seed_edges = [
        (u, v) for u in range(seed_n) for v in range(u + 1, seed_n)
    ]
    endpoints = list(np.array(seed_edges, dtype=np.int64).ravel())
    edges = list(seed_edges)
    for v in range(seed_n, n):
        targets = set()
        while len(targets) < m_attach:
            pick = int(endpoints[gen.integers(0, len(endpoints))])
            targets.add(pick)
        for t in targets:
            edges.append((v, t))
            endpoints.extend((v, t))
    return from_edges(
        np.asarray(edges, dtype=np.int64), num_vertices=n, name=name or f"ba_{n}"
    )


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """R-MAT (Graph500-style) recursive-matrix generator.

    Draws ``edge_factor * 2**scale`` arcs by recursively descending a
    2×2 probability partition ``(a, b; c, d)``, then symmetrizes and
    deduplicates.  Default parameters are the Graph500 standard.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GeneratorError("rmat probabilities must be non-negative and sum <= 1")
    if not 1 <= scale <= 26:
        raise GeneratorError("scale must be in [1, 26]")
    if edge_factor < 1:
        raise GeneratorError("edge_factor must be >= 1")
    gen = ensure_rng(rng)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = gen.random(m)
        # Quadrant thresholds: a | a+b | a+b+c | 1.
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)
    return from_edges(
        np.column_stack([src, dst]), num_vertices=n, name=name or f"rmat_{scale}"
    )
