"""Classic random-graph families.

Used for property-based testing (Erdős–Rényi gives arbitrary sparse
topology), for stand-ins with prescribed uniform degree (random regular,
e.g. the cage13 analogue), and for small-world structure
(Watts–Strogatz, used in ablations).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..._rng import RngLike, ensure_rng
from ...errors import GeneratorError
from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["erdos_renyi", "random_regular", "watts_strogatz"]


def erdos_renyi(
    n: int,
    *,
    p: Optional[float] = None,
    m: Optional[int] = None,
    rng: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """G(n, p) or G(n, m) Erdős–Rényi graph.

    Exactly one of ``p`` (edge probability) or ``m`` (edge count) must be
    given.  G(n, m) samples edge slots without replacement; G(n, p) draws
    a binomial edge count then delegates (correct for sparse p, which is
    the regime every test uses).
    """
    if (p is None) == (m is None):
        raise GeneratorError("specify exactly one of p or m")
    if n < 0:
        raise GeneratorError("n must be non-negative")
    gen = ensure_rng(rng)
    max_m = n * (n - 1) // 2
    if p is not None:
        if not 0.0 <= p <= 1.0:
            raise GeneratorError("p must be in [0, 1]")
        m = int(gen.binomial(max_m, p)) if max_m else 0
    assert m is not None
    if m < 0 or m > max_m:
        raise GeneratorError(f"m must be in [0, {max_m}]")
    if m == 0 or n < 2:
        from ..build import empty_graph

        return empty_graph(n, name=name or f"gnm_{n}_{m}")
    # Sample m distinct slots from the upper triangle, then decode.
    slots = gen.choice(max_m, size=m, replace=False)
    u, v = _decode_triangular(slots, n)
    return from_edges(
        np.column_stack([u, v]), num_vertices=n, name=name or f"gnm_{n}_{m}"
    )


def _decode_triangular(slots: np.ndarray, n: int):
    """Map slot ids in [0, C(n,2)) to (u, v) pairs with u < v.

    Slot ordering is row-major over the strict upper triangle: row u has
    ``n - 1 - u`` slots.  The row of a slot s satisfies
    ``T(u) <= s < T(u+1)`` where ``T(u) = u*n - u*(u+1)/2``; solved in
    closed form via the quadratic formula then clamped.
    """
    s = slots.astype(np.float64)
    # Invert T(u): u = floor((2n-1 - sqrt((2n-1)^2 - 8s)) / 2).
    disc = (2 * n - 1) ** 2 - 8 * s
    u = np.floor((2 * n - 1 - np.sqrt(disc)) / 2).astype(np.int64)
    # Guard against float rounding at row boundaries.
    t = u * n - (u * (u + 1)) // 2
    too_big = t > slots
    u[too_big] -= 1
    t = u * n - (u * (u + 1)) // 2
    v = (slots - t) + u + 1
    return u, v.astype(np.int64)


def random_regular(
    n: int,
    d: int,
    *,
    rng: RngLike = None,
    max_retries: int = 200,
    name: str = "",
) -> CSRGraph:
    """A (near-)d-regular random graph via the configuration model.

    ``n * d`` stubs are shuffled and paired; self-loops and multi-edges
    are discarded and the whole pairing retried until a simple d-regular
    matching is found (fast for d ≪ n) or ``max_retries`` pairings have
    been tried, after which the best simple subgraph found is returned
    (still near-regular; generators for Table I analogues only need the
    degree statistics, not exact regularity).
    """
    if n < 0 or d < 0:
        raise GeneratorError("n and d must be non-negative")
    if d >= n:
        raise GeneratorError("d must be < n")
    if (n * d) % 2:
        raise GeneratorError("n * d must be even")
    gen = ensure_rng(rng)
    if n == 0 or d == 0:
        from ..build import empty_graph

        return empty_graph(n, name=name or f"reg_{n}_{d}")
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    best = None
    for _ in range(max_retries):
        gen.shuffle(stubs)
        u, v = stubs[0::2], stubs[1::2]
        ok = u != v
        key = np.minimum(u, v) * n + np.maximum(u, v)
        uniq_key, counts = np.unique(key[ok], return_counts=True)
        simple = int((counts == 1).sum())
        if simple == len(u):  # perfect simple pairing
            return from_edges(
                np.column_stack([u, v]), num_vertices=n, name=name or f"reg_{n}_{d}"
            )
        if best is None or simple > best[0]:
            keep = ok & np.isin(key, uniq_key[counts == 1])
            best = (simple, u[keep].copy(), v[keep].copy())
    assert best is not None
    return from_edges(
        np.column_stack([best[1], best[2]]),
        num_vertices=n,
        name=name or f"reg_{n}_{d}",
    )


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    *,
    rng: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Watts–Strogatz small-world graph: ring lattice + rewiring.

    Each vertex starts joined to its ``k`` nearest ring neighbors
    (``k`` even); each lattice edge is rewired to a random endpoint with
    probability ``beta``.
    """
    if n < 0:
        raise GeneratorError("n must be non-negative")
    if k < 0 or k % 2:
        raise GeneratorError("k must be even and non-negative")
    if k >= n and n > 0:
        raise GeneratorError("k must be < n")
    if not 0.0 <= beta <= 1.0:
        raise GeneratorError("beta must be in [0, 1]")
    gen = ensure_rng(rng)
    if n == 0 or k == 0:
        from ..build import empty_graph

        return empty_graph(n, name=name or f"ws_{n}_{k}")
    base = np.arange(n, dtype=np.int64)
    src = np.concatenate([base for _ in range(k // 2)])
    dst = np.concatenate([(base + j) % n for j in range(1, k // 2 + 1)])
    rewire = gen.random(len(src)) < beta
    dst = dst.copy()
    dst[rewire] = gen.integers(0, n, size=int(rewire.sum()))
    keep = src != dst
    return from_edges(
        np.column_stack([src[keep], dst[keep]]),
        num_vertices=n,
        name=name or f"ws_{n}_{k}",
    )
