"""Mesh-like graph generators.

All but one of the paper's "real-world" datasets (Table I) are meshes or
mesh-like discretization matrices from the SuiteSparse collection: low,
nearly uniform degree and large diameter.  These generators build the
structural stand-ins used by :mod:`repro.graph.generators.suitesparse`:

* :func:`grid2d` / :func:`grid3d` — 5-point / 7-point stencil grids
  (ecology2, apache2, thermal2-like structure);
* :func:`grid2d_9pt` — 9-point (Moore) stencil, avg degree ≈ 8
  (parabolic_fem-like);
* :func:`fem_mesh2d` — Delaunay-ish triangulated random point sets via a
  jittered-grid triangulation, avg degree ≈ 6 (FEM matrices);
* :func:`banded` — k-banded matrix graph, uniform high degree
  (af_shell3-like, avg degree ≈ 35.8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..._rng import RngLike, ensure_rng
from ...errors import GeneratorError
from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["grid2d", "grid2d_9pt", "grid3d", "fem_mesh2d", "banded"]


def grid2d(nx: int, ny: int, *, periodic: bool = False, name: str = "") -> CSRGraph:
    """A 2-D grid graph (5-point stencil), optionally with wraparound.

    Average degree tends to 4 (exactly 4 when periodic).  Chromatic
    number is 2, which makes the family a useful quality oracle in tests.
    """
    if nx <= 0 or ny <= 0:
        raise GeneratorError("grid dimensions must be positive")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    edges = []
    # Horizontal neighbors.
    edges.append(np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()]))
    # Vertical neighbors.
    edges.append(np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()]))
    if periodic:
        if ny > 2:
            edges.append(np.column_stack([idx[:, -1].ravel(), idx[:, 0].ravel()]))
        if nx > 2:
            edges.append(np.column_stack([idx[-1, :].ravel(), idx[0, :].ravel()]))
    return from_edges(
        np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64),
        num_vertices=nx * ny,
        name=name or f"grid2d_{nx}x{ny}",
    )


def grid2d_9pt(nx: int, ny: int, *, name: str = "") -> CSRGraph:
    """A 2-D grid with 8-neighborhood (Moore stencil): avg degree → 8."""
    if nx <= 0 or ny <= 0:
        raise GeneratorError("grid dimensions must be positive")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    edges = [
        np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()]),
        np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()]),
        np.column_stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()]),
        np.column_stack([idx[:-1, 1:].ravel(), idx[1:, :-1].ravel()]),
    ]
    return from_edges(
        np.concatenate(edges), num_vertices=nx * ny, name=name or f"grid2d9_{nx}x{ny}"
    )


def grid3d(nx: int, ny: int, nz: int, *, name: str = "") -> CSRGraph:
    """A 3-D grid graph (7-point stencil): avg degree → 6."""
    if nx <= 0 or ny <= 0 or nz <= 0:
        raise GeneratorError("grid dimensions must be positive")
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    edges = [
        np.column_stack([idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()]),
        np.column_stack([idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()]),
        np.column_stack([idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()]),
    ]
    return from_edges(
        np.concatenate(edges),
        num_vertices=nx * ny * nz,
        name=name or f"grid3d_{nx}x{ny}x{nz}",
    )


def fem_mesh2d(
    nx: int,
    ny: int,
    *,
    diagonal_fraction: float = 1.0,
    rng: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """A triangulated 2-D mesh: grid edges plus one random diagonal per cell.

    This is the structure of a typical 2-D finite-element stiffness
    matrix: average degree ≈ 6 with mild irregularity (each cell's
    diagonal direction is random).  ``diagonal_fraction`` < 1 leaves some
    cells un-triangulated, lowering average degree toward 4.
    """
    if not 0.0 <= diagonal_fraction <= 1.0:
        raise GeneratorError("diagonal_fraction must be in [0, 1]")
    gen = ensure_rng(rng)
    base = grid2d(nx, ny)
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    # Cells are (i, j) with i < nx-1, j < ny-1; choose a diagonal per cell.
    ncells = (nx - 1) * (ny - 1)
    if ncells <= 0:
        return grid2d(nx, ny, name=name or f"fem2d_{nx}x{ny}")
    a = idx[:-1, :-1].ravel()  # top-left corners
    b = idx[1:, 1:].ravel()  # bottom-right
    c = idx[:-1, 1:].ravel()  # top-right
    d = idx[1:, :-1].ravel()  # bottom-left
    which = gen.random(ncells) < 0.5
    keep = gen.random(ncells) < diagonal_fraction
    diag_src = np.where(which, a, c)[keep]
    diag_dst = np.where(which, b, d)[keep]
    edges = np.concatenate(
        [base.edge_list(), np.column_stack([diag_src, diag_dst])]
    )
    return from_edges(edges, num_vertices=nx * ny, name=name or f"fem2d_{nx}x{ny}")


def banded(n: int, bandwidth: int, *, name: str = "") -> CSRGraph:
    """The graph of an ``n × n`` banded matrix: v ~ u iff 0 < |v-u| <= k.

    Interior vertices have degree exactly ``2 * bandwidth``; the family
    stands in for the shell/solid FEM matrices with high uniform degree
    (af_shell3: avg degree 35.84 ≈ bandwidth 18).
    """
    if n <= 0:
        raise GeneratorError("n must be positive")
    if bandwidth < 1:
        raise GeneratorError("bandwidth must be >= 1")
    if bandwidth >= n:
        bandwidth = n - 1
    edges = []
    base = np.arange(n, dtype=np.int64)
    for k in range(1, bandwidth + 1):
        edges.append(np.column_stack([base[:-k], base[k:]]))
    return from_edges(
        np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64),
        num_vertices=n,
        name=name or f"banded_{n}_k{bandwidth}",
    )
