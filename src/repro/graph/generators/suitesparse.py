"""Synthetic analogues of the paper's SuiteSparse datasets (Table I).

The paper evaluates on 12 matrices from the SuiteSparse collection.
Those files are not available offline, so each dataset gets a synthetic
*structural analogue*: a generator from :mod:`repro.graph.generators`
whose family matches the matrix's topology class (2-D/3-D discretization
grid, triangulated FEM mesh, banded shell/solid, circuit, DNA-cage) and
whose parameters are tuned to the published average degree — the single
statistic the paper itself uses to explain performance differences
(e.g. af_shell3's 35.84 average degree causing the Gunrock serial-loop
slowdown, §V-B).

Every entry carries the *paper-reported* Table I row verbatim so the
Table I emitter can print reported vs regenerated numbers side by side.
Graphs are generated at ``paper vertices / scale_div`` vertices; the
default divisor keeps the whole 12-dataset × 9-algorithm grid laptop-
sized while preserving each family's degree statistics (which are
size-invariant for all families used).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..._rng import RngLike, ensure_rng
from ...errors import DatasetError
from ..csr import CSRGraph
from . import mesh, random_graphs

__all__ = [
    "PaperStats",
    "DatasetSpec",
    "SUITESPARSE_ANALOGUES",
    "dataset_names",
    "get_spec",
    "generate",
    "DEFAULT_SCALE_DIV",
]

#: Default down-scaling divisor for dataset analogues (vertices).
DEFAULT_SCALE_DIV = 64


@dataclass(frozen=True)
class PaperStats:
    """A Table I row exactly as printed in the paper."""

    vertices: int
    edges: int
    avg_degree: float
    diameter: int
    diameter_is_estimate: bool
    type_tag: str  # "ru", "rd", "gu" per Table I's legend


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset analogue: paper metadata plus a scaled generator."""

    name: str
    paper: PaperStats
    family: str  # human-readable generator family
    builder: Callable[[int, RngLike], CSRGraph]

    def generate(self, scale_div: int = DEFAULT_SCALE_DIV, rng: RngLike = None) -> CSRGraph:
        """Build the analogue at ``paper.vertices / scale_div`` vertices."""
        if scale_div < 1:
            raise DatasetError("scale_div must be >= 1")
        n_target = max(64, self.paper.vertices // scale_div)
        g = self.builder(n_target, ensure_rng(rng))
        return CSRGraph(
            g.offsets, g.indices, undirected=True, name=self.name, validate=False
        )


def _square(n_target: int) -> int:
    """Grid side length whose square is close to ``n_target``."""
    return max(2, int(round(math.sqrt(n_target))))


def _cube(n_target: int) -> int:
    return max(2, int(round(n_target ** (1.0 / 3.0))))


def _make_specs() -> Dict[str, DatasetSpec]:
    def spec(name, paper, family, builder):
        return DatasetSpec(name=name, paper=paper, family=family, builder=builder)

    k = 1000
    M = 1000 * k
    rows: List[DatasetSpec] = [
        # 3-D FEM discretization, avg degree 17.33 → banded width 9 (deg ≈ 18,
        # interval structure keeps a large diameter like the real mesh).
        spec(
            "offshore",
            PaperStats(260 * k, int(4.2 * M), 17.33, 41, True, "ru"),
            "banded(k=9)",
            lambda n, rng: mesh.banded(n, 9),
        ),
        # Shell-element matrix with the grid's highest average degree —
        # the dataset where Gunrock's serial loop loses to Naumov (§V-B).
        spec(
            "af_shell3",
            PaperStats(505 * k, int(17.6 * M), 35.84, 485, True, "ru"),
            "banded(k=18)",
            lambda n, rng: mesh.banded(n, 18),
        ),
        # Parabolic FEM: 2-D 9-point stencil, avg degree ≈ 8.
        spec(
            "parabolic_fem",
            PaperStats(1100 * k, int(112.8 * M), 8.0, 1536, True, "ru"),
            "grid2d_9pt",
            lambda n, rng: mesh.grid2d_9pt(_square(n), _square(n)),
        ),
        # Structural problem, avg degree 7.74 → 9-point stencil minus a few
        # diagonals (fem_mesh over-triangulated); 9pt grid ≈ 7.9 avg.
        spec(
            "apache2",
            PaperStats(7400 * k, int(4.8 * M), 7.74, 449, True, "ru"),
            "grid2d_9pt",
            lambda n, rng: mesh.grid2d_9pt(_square(n), _square(n)),
        ),
        # Landscape-ecology circuit model: plain 2-D 5-point grid.
        spec(
            "ecology2",
            PaperStats(1000 * k, int(5 * M), 6.0, 1998, True, "ru"),
            "grid2d",
            lambda n, rng: mesh.grid2d(_square(n), _square(n)),
        ),
        # Thermal FEM: 3-D unstructured; 9-point stencil matches avg deg 8.
        spec(
            "thermal2",
            PaperStats(4200 * k, int(483 * M), 8.0, 1778, True, "ru"),
            "grid2d_9pt",
            lambda n, rng: mesh.grid2d_9pt(_square(n), _square(n)),
        ),
        # Circuit-simulation matrix, avg degree 5.83 → triangulated grid
        # with 90% of cell diagonals (≈ 5.8).  Table II's dataset.
        spec(
            "G3_circuit",
            PaperStats(1600 * k, int(7.7 * M), 5.83, 515, True, "ru"),
            "fem_mesh2d(0.9)",
            lambda n, rng: mesh.fem_mesh2d(
                _square(n), _square(n), diagonal_fraction=0.9, rng=rng
            ),
        ),
        # 3-D thermal FEM with tetrahedral elements, avg degree 24.6.
        spec(
            "FEM_3D_thermal2",
            PaperStats(148 * k, int(3.5 * M), 24.6, 150, False, "rd"),
            "banded(k=12)",
            lambda n, rng: mesh.banded(n, 12),
        ),
        # Thermo-mechanical FEM, avg degree 14.93.
        spec(
            "thermomech_dK",
            PaperStats(204 * k, int(2.8 * M), 14.93, 647, True, "rd"),
            "banded(k=7)",
            lambda n, rng: mesh.banded(n, 7),
        ),
        # Circuit netlist: irregular small-world wiring, avg degree 6.68.
        spec(
            "ASIC_320ks",
            PaperStats(322 * k, int(1.3 * M), 6.68, 45, False, "rd"),
            "watts_strogatz(k=6)",
            lambda n, rng: random_graphs.watts_strogatz(n, 6, 0.05, rng=rng),
        ),
        # DNA electrophoresis cage model: near-regular, avg degree 17.8.
        spec(
            "cage13",
            PaperStats(445 * k, int(7.5 * M), 17.8, 42, True, "rd"),
            "random_regular(d=18)",
            lambda n, rng: random_graphs.random_regular(
                n - (n % 2), 18, rng=rng
            ),
        ),
        # Atmospheric model: 3-D stencil, avg degree 7.94.
        spec(
            "atmosmodd",
            PaperStats(1300 * k, int(8.8 * M), 7.94, 351, True, "rd"),
            "grid2d_9pt",
            lambda n, rng: mesh.grid2d_9pt(_square(n), _square(n)),
        ),
    ]
    return {s.name: s for s in rows}


#: Registry of all 12 Table I real-world dataset analogues, by name.
SUITESPARSE_ANALOGUES: Dict[str, DatasetSpec] = _make_specs()


def dataset_names() -> List[str]:
    """All analogue names in Table I order."""
    return list(SUITESPARSE_ANALOGUES)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset analogue; raises :class:`DatasetError` if unknown."""
    try:
        return SUITESPARSE_ANALOGUES[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(SUITESPARSE_ANALOGUES)}"
        ) from None


def generate(
    name: str, *, scale_div: int = DEFAULT_SCALE_DIV, rng: RngLike = None
) -> CSRGraph:
    """Generate the named analogue at the given scale divisor."""
    return get_spec(name).generate(scale_div=scale_div, rng=rng)
