"""Random geometric graphs (RGG) in the DIMACS10 style.

The paper's scaling study (Fig. 3) uses the DIMACS10 graphs
``rgg_n_2_{15..24}_s0``: 2^k points in the unit square, connected when
within Euclidean distance r, with r chosen so the expected average
degree grows slowly with scale (Table I shows 9.78 at scale 15 up to
15.8 at scale 24 — the DIMACS10 family uses r ~ sqrt(ln(n)/n)).

:func:`rgg` generates the same family from scratch.  A uniform spatial
grid of cell size r makes neighbor search O(n) expected: each point only
compares against points in its own and the 8 adjacent cells, vectorized
per cell-pair offset.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..._rng import RngLike, ensure_rng
from ...errors import GeneratorError
from ..build import from_arcs
from ..csr import CSRGraph

__all__ = ["rgg", "rgg_scale", "dimacs10_radius"]


def dimacs10_radius(n: int) -> float:
    """The DIMACS10 connection radius for an n-point RGG.

    DIMACS10 uses ``r = sqrt(ln(n) / (pi * n)) * c`` with c chosen so the
    graph is almost surely connected; the resulting expected average
    degree is ``pi * r^2 * n ≈ c^2 * ln(n)``, reproducing Table I's slow
    degree growth (9.78 → 15.8 over scales 15 → 24).  We use c^2 = 0.94
    which matches the published averages to within a few percent.
    """
    if n < 2:
        raise GeneratorError("rgg needs at least 2 points")
    return math.sqrt(0.94 * math.log(n) / (math.pi * n))


def rgg(
    n: int,
    radius: Optional[float] = None,
    *,
    rng: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Generate a random geometric graph on ``n`` uniform points.

    Points are i.i.d. uniform in the unit square; an undirected edge
    joins every pair within ``radius``.  ``radius`` defaults to the
    DIMACS10 choice (:func:`dimacs10_radius`).
    """
    if n < 0:
        raise GeneratorError("n must be non-negative")
    if n <= 1:
        from ..build import empty_graph

        return empty_graph(n, name=name or f"rgg_{n}")
    r = dimacs10_radius(n) if radius is None else float(radius)
    if not 0 < r <= 1:
        raise GeneratorError("radius must lie in (0, 1]")
    gen = ensure_rng(rng)
    pts = gen.random((n, 2))
    src, dst = _radius_pairs(pts, r)
    return from_arcs(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        n,
        undirected=True,
        name=name or f"rgg_{n}",
    )


def rgg_scale(scale: int, *, rng: RngLike = None) -> CSRGraph:
    """The DIMACS10-style graph ``rgg_n_2_<scale>_s0``: 2**scale points."""
    if not 1 <= scale <= 26:
        raise GeneratorError("scale must be in [1, 26]")
    n = 1 << scale
    return rgg(n, rng=rng, name=f"rgg_n_2_{scale}_s0")


def _radius_pairs(pts: np.ndarray, r: float):
    """All index pairs (i < j) with ``|pts[i]-pts[j]| <= r``.

    Grid-bucket approach: points are binned into cells of side r; each
    unordered pair of nearby cells is checked with one vectorized
    distance computation.  Within-cell pairs use a triangular mask.
    """
    n = len(pts)
    ncell = max(1, int(1.0 / r))
    cell = np.minimum((pts * ncell).astype(np.int64), ncell - 1)
    cid = cell[:, 0] * ncell + cell[:, 1]
    order = np.argsort(cid, kind="stable")
    cid_sorted = cid[order]
    # Slice boundaries per occupied cell.
    boundaries = np.flatnonzero(np.diff(cid_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    occupied = cid_sorted[starts]
    cell_slice = {int(c): (int(s), int(e)) for c, s, e in zip(occupied, starts, ends)}

    r2 = r * r
    out_src = []
    out_dst = []
    # Offsets covering each unordered cell pair exactly once: self plus
    # the 4 "forward" neighbors (E, SW, S, SE) in lexicographic order.
    fwd = ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1))
    for c in cell_slice:
        cx, cy = divmod(c, ncell)
        s0, e0 = cell_slice[c]
        a = order[s0:e0]
        pa = pts[a]
        for dx, dy in fwd:
            nx, ny = cx + dx, cy + dy
            if not (0 <= nx < ncell and 0 <= ny < ncell):
                continue
            nb = nx * ncell + ny
            if nb not in cell_slice:
                continue
            s1, e1 = cell_slice[nb]
            b = order[s1:e1]
            pb = pts[b]
            d2 = ((pa[:, None, :] - pb[None, :, :]) ** 2).sum(axis=2)
            if (dx, dy) == (0, 0):
                ii, jj = np.nonzero(np.triu(d2 <= r2, k=1))
            else:
                ii, jj = np.nonzero(d2 <= r2)
            if len(ii):
                out_src.append(a[ii])
                out_dst.append(b[jj])
    if not out_src:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    return np.concatenate(out_src), np.concatenate(out_dst)
