"""Synthetic graph generators.

* :mod:`.rgg` — DIMACS10-style random geometric graphs (Fig. 3 sweep).
* :mod:`.mesh` — grids, FEM meshes, banded matrices (Table I analogues).
* :mod:`.random_graphs` — Erdős–Rényi, random regular, Watts–Strogatz.
* :mod:`.powerlaw` — Barabási–Albert and R-MAT (future-work ablations).
* :mod:`.suitesparse` — the Table I dataset-analogue registry.
"""

from .mesh import banded, fem_mesh2d, grid2d, grid2d_9pt, grid3d
from .powerlaw import barabasi_albert, rmat
from .random_graphs import erdos_renyi, random_regular, watts_strogatz
from .rgg import dimacs10_radius, rgg, rgg_scale

__all__ = [
    "rgg",
    "rgg_scale",
    "dimacs10_radius",
    "grid2d",
    "grid2d_9pt",
    "grid3d",
    "fem_mesh2d",
    "banded",
    "erdos_renyi",
    "random_regular",
    "watts_strogatz",
    "barabasi_albert",
    "rmat",
]
