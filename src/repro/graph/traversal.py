"""Level-synchronous traversals over :class:`CSRGraph`.

The harness needs BFS twice: to estimate diameters the way Table I does
(sampled eccentricities, the ``*`` convention) and to report connected
components in dataset summaries.  Both are implemented as frontier-at-a-
time sweeps — the same bulk-synchronous structure the paper's GPU
frameworks use — with all per-level work vectorized.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._rng import RngLike, ensure_rng
from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "bfs_levels",
    "eccentricity",
    "estimate_diameter",
    "connected_components",
    "largest_component",
]


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS distance from ``source`` to every vertex (−1 = unreachable).

    Level-synchronous: each step expands the whole current frontier with
    one gather over CSR and dedups via the level array.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range [0, {n})")
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    offsets, indices = graph.offsets, graph.indices
    while len(frontier):
        depth += 1
        neigh = _expand(offsets, indices, frontier)
        if not len(neigh):
            break
        fresh = neigh[levels[neigh] < 0]
        if not len(fresh):
            break
        fresh = np.unique(fresh)
        levels[fresh] = depth
        frontier = fresh
    return levels


def _expand(offsets: np.ndarray, indices: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Concatenate the neighbor lists of every frontier vertex (with dups)."""
    degs = offsets[frontier + 1] - offsets[frontier]
    total = int(degs.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Flattened gather: position j within vertex i's slice is
    # offsets[frontier[i]] + j; build all of them with one ramp.
    starts = np.repeat(offsets[frontier], degs)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degs) - degs, degs
    )
    return indices[starts + ramp]


def eccentricity(graph: CSRGraph, source: int) -> int:
    """Eccentricity of ``source`` within its connected component."""
    levels = bfs_levels(graph, source)
    return int(levels.max(initial=0))


def estimate_diameter(
    graph: CSRGraph,
    *,
    num_samples: int = 64,
    rng: RngLike = None,
) -> int:
    """Estimate the graph diameter by sampling BFS eccentricities.

    This mirrors Table I's footnote: "diameter is an estimate using
    samples from 10,000 vertices" — a lower bound equal to the maximum
    eccentricity over sampled sources.  ``num_samples`` is clipped to n.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    gen = ensure_rng(rng)
    k = min(num_samples, n)
    sources = gen.choice(n, size=k, replace=False)
    return max(eccentricity(graph, int(s)) for s in sources)


def connected_components(graph: CSRGraph) -> Tuple[int, np.ndarray]:
    """Connected components via repeated BFS.

    Returns ``(count, labels)`` where ``labels[v]`` is the 0-based
    component id of ``v``.  Directed graphs are treated as their
    underlying undirected graph only if symmetric; for general directed
    graphs this computes weakly-reachable sets from seeds in id order,
    which equals weak components when the arc set is symmetric.
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    count = 0
    for seed in range(n):
        if labels[seed] >= 0:
            continue
        levels = bfs_levels(graph, seed)
        labels[levels >= 0] = count
        count += 1
    return count, labels


def largest_component(graph: CSRGraph) -> CSRGraph:
    """The induced subgraph on the largest connected component.

    Vertices are relabeled to ``[0, n')`` preserving relative order.  Used
    by generators that must hand the coloring algorithms a connected mesh.
    """
    count, labels = connected_components(graph)
    if count <= 1:
        return graph
    sizes = np.bincount(labels, minlength=count)
    keep = labels == int(np.argmax(sizes))
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[keep] = np.arange(int(keep.sum()), dtype=np.int64)
    src, dst = graph.arcs()
    sel = keep[src] & keep[dst]
    from .build import from_arcs

    return from_arcs(
        remap[src[sel]],
        remap[dst[sel]],
        int(keep.sum()),
        undirected=graph.undirected,
        name=graph.name,
    )
