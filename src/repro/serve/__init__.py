"""Coloring-as-a-service: the resilient async serving layer.

The ROADMAP's north star is a production-scale service, not a batch
harness; this package is that serving layer over the deterministic
reproduction.  A long-lived asyncio :class:`ColoringServer` accepts
:class:`ColoringRequest`\\ s (a harness dataset name or an inline CSR
graph, an implementation id, a backend, a per-request deadline) and
guarantees every one a terminal :class:`ColoringResponse` — computed,
served from cache, degraded to a cheaper implementation, load-shed
with a reason, or timed out.  Never a silent drop, never a hung
future, and every non-degraded result bit-identical to a direct
:func:`repro.core.registry.run_algorithm` call.

Layers (one module each, composed by the server):

* :mod:`~repro.serve.request` — request/response types and statuses.
* :mod:`~repro.serve.cache` — result cache keyed by a content hash of
  the CSR arrays (:func:`graph_fingerprint`).
* :mod:`~repro.serve.breaker` — per-(dataset, backend) circuit
  breakers.
* :mod:`~repro.serve.degrade` — the quality/latency fallback ladder.
* :mod:`~repro.serve.server` — admission queue, deadline enforcement,
  retry-with-backoff, worker pool.
* :mod:`~repro.serve.client` — synchronous in-process client.
* :mod:`~repro.serve.loadgen` — bursty Zipf traffic for chaos tests.

See docs/serving.md for the architecture and the CLI
(``python -m repro.harness serve`` / ``loadgen``).
"""

from .breaker import BreakerBoard, CircuitBreaker
from .cache import CachedResult, ResultCache, graph_fingerprint
from .client import ServeClient
from .degrade import FALLBACKS, ladder
from .loadgen import LoadSpec, build_schedule, run_load, write_snapshot
from .request import TERMINAL_STATUSES, ColoringRequest, ColoringResponse
from .server import ColoringServer, ServeConfig

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "CachedResult",
    "ResultCache",
    "graph_fingerprint",
    "ServeClient",
    "FALLBACKS",
    "ladder",
    "LoadSpec",
    "build_schedule",
    "run_load",
    "write_snapshot",
    "TERMINAL_STATUSES",
    "ColoringRequest",
    "ColoringResponse",
    "ColoringServer",
    "ServeConfig",
]
