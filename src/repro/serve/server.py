"""The asyncio coloring service (``repro.serve.ColoringServer``).

A long-lived service wrapping the deterministic harness: requests are
admitted into a **bounded** queue (load is shed with an explicit
reason, never silently dropped), picked up by a fixed pool of worker
tasks, and computed in a thread pool so the event loop stays
responsive while kernels run.  Every submitted request receives
exactly one terminal :class:`~repro.serve.request.ColoringResponse`.

The robustness toolkit, in the order a request meets it:

1. **Admission control** — unknown implementation / dataset / backend
   and malformed requests are rejected up front; a full queue sheds
   with ``queue_full``; a closing service sheds with ``shutting_down``.
2. **Result cache** — a hit on the
   (:func:`~repro.serve.cache.graph_fingerprint`, impl, backend, seed)
   key answers instantly and bit-identically (status ``ok``,
   ``source="cache"``).
3. **Circuit breaker** — per (dataset, backend); open means primary
   compute is skipped and the request degrades immediately.
4. **Deadline enforcement** — the per-request budget covers queue wait,
   graph load, and compute; expiry cancels cooperatively (compute
   threads check a flag before starting, the awaiting worker stops
   waiting immediately) and answers ``timeout``.
5. **Retry with backoff** — transient failures
   (:class:`~repro.errors.TransientFaultError`, including the
   serve-site :class:`~repro.errors.WorkerKillFault`) are retried with
   exponential backoff and the *same* seed, so a retried success is
   still bit-identical.
6. **Degradation ladder** — when retries are exhausted, the failure is
   deterministic, or the breaker is open: try each cheaper
   implementation from :func:`repro.serve.degrade.ladder`, flag the
   response ``degraded``; if the ladder too is exhausted, shed.

Fault injection: every compute attempt calls
:func:`repro.harness.faults.maybe_fire_serve`, so ``REPRO_FAULTS``
clauses with ``site=serve`` (kill / delay / raise) land inside the
service exactly where real failures would (docs/serving.md).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Event
from typing import Optional, Tuple

from .. import log as runlog
from .. import metrics
from ..backend import BackendError, resolve as resolve_backend
from ..core.registry import ALGORITHMS, run_algorithm
from ..errors import DeadlineExceeded, TransientFaultError, WorkerKillFault
from ..graph.generators.suitesparse import DEFAULT_SCALE_DIV
from ..harness import datasets as ds
from ..harness import faults
from .breaker import BreakerBoard
from .cache import CachedResult, ResultCache, graph_fingerprint
from .degrade import ladder
from .request import ColoringRequest, ColoringResponse, coloring_sha256

__all__ = ["ServeConfig", "ColoringServer"]

#: Retry backoff: 20 ms doubling, capped — the service analogue of the
#: grid runner's schedule, scaled down for interactive latencies.
_RETRY_BACKOFF_S = 0.02
_RETRY_BACKOFF_CAP_S = 0.25


@dataclass
class ServeConfig:
    """Tuning knobs for one :class:`ColoringServer`."""

    workers: int = 2  # concurrent worker tasks (and compute threads)
    queue_limit: int = 16  # bounded admission queue depth
    retries: int = 2  # per-request transient-failure retry budget
    breaker_threshold: int = 3  # consecutive failures before opening
    breaker_cooldown_s: float = 0.5  # open -> half-open probe delay
    cache_capacity: int = 256  # LRU result-cache entries
    default_deadline_s: Optional[float] = None  # per-request default
    degrade: bool = True  # walk the fallback ladder before shedding
    scale_div: int = DEFAULT_SCALE_DIV  # dataset scaling default


class _Pending:
    """One admitted request: its future, clock marks, and cancel flag."""

    __slots__ = (
        "request",
        "future",
        "backend",
        "submitted_at",
        "deadline_at",
        "cancel_event",
        "attempts",
    )

    def __init__(
        self,
        request: ColoringRequest,
        future: "asyncio.Future[ColoringResponse]",
        backend: str,
        deadline_s: Optional[float],
    ):
        self.request = request
        self.future = future
        self.backend = backend
        self.submitted_at = time.monotonic()
        self.deadline_at = (
            self.submitted_at + deadline_s if deadline_s is not None else None
        )
        self.cancel_event = Event()
        self.attempts = 0

    def remaining(self) -> Optional[float]:
        """Seconds of deadline budget left (None = unbounded)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0


class ColoringServer:
    """The asyncio service.  See the module docstring for semantics.

    Lifecycle: ``await start()``, then any number of concurrent
    ``await submit(request)`` calls, then ``await stop()``.  All
    methods must run on one event loop;
    :class:`repro.serve.client.ServeClient` packages that loop in a
    background thread for synchronous callers.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        if self.config.workers < 1:
            raise ValueError("serve workers must be >= 1")
        if self.config.queue_limit < 1:
            raise ValueError("serve queue_limit must be >= 1")
        self.cache = ResultCache(self.config.cache_capacity)
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self._queue: "Optional[asyncio.Queue[Optional[_Pending]]]" = None
        self._workers: list = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._closing = False
        self._seq = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        # Compute threads get 2x headroom over worker tasks: an attempt
        # abandoned at its deadline keeps its thread busy until the
        # kernel returns, and fresh attempts must not queue behind it.
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers * 2,
            thread_name_prefix="repro-serve",
        )
        self._workers = [
            asyncio.create_task(self._worker(i))
            for i in range(self.config.workers)
        ]
        self._started = True
        self._closing = False
        runlog.emit(
            "serve_start",
            workers=self.config.workers,
            queue_limit=self.config.queue_limit,
            retries=self.config.retries,
        )

    async def stop(self, *, drain: bool = True) -> None:
        """Shut down, resolving every admitted request first.

        ``drain=True`` (default) lets queued requests complete;
        ``drain=False`` sheds them with ``shutting_down``.  New
        submissions are shed either way.  In-flight compute finishes.
        """
        if not self._started:
            return
        self._closing = True
        assert self._queue is not None
        if not drain:
            while True:
                try:
                    pend = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if pend is not None:
                    self._shed(pend, "shutting_down")
                self._queue.task_done()
        await self._queue.join()
        for _ in self._workers:
            await self._queue.put(None)
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        assert self._executor is not None
        self._executor.shutdown(wait=False)
        self._started = False
        runlog.emit("serve_stop")

    # -- admission -----------------------------------------------------------

    async def submit(self, request: ColoringRequest) -> ColoringResponse:
        """Admit one request and await its terminal response."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ColoringResponse]" = loop.create_future()
        if not request.request_id:
            request.request_id = f"req-{self._seq:06d}"
        self._seq += 1
        backend_name = ""
        reason = self._validate(request)
        if reason is None:
            try:
                backend_name = resolve_backend(request.backend).name
            except BackendError:
                reason = "unknown_backend"
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        pend = _Pending(request, future, backend_name, deadline_s)
        runlog.emit(
            "serve_request",
            request_id=request.request_id,
            dataset=request.dataset_label,
            impl=request.impl,
            backend=backend_name,
            deadline_s=deadline_s,
        )
        if reason is not None:
            self._shed(pend, reason)
            return await future
        assert self._queue is not None
        try:
            self._queue.put_nowait(pend)
        except asyncio.QueueFull:
            self._shed(pend, "queue_full")
            return await future
        metrics.set_gauge(
            "repro_serve_queue_depth", float(self._queue.qsize())
        )
        return await future

    def _validate(self, request: ColoringRequest) -> Optional[str]:
        """Cheap admission checks; returns a shed reason or None."""
        if self._closing or not self._started:
            return "shutting_down"
        if request.impl not in ALGORITHMS:
            return "unknown_impl"
        if (request.dataset is None) == (request.graph is None):
            return "bad_request"  # exactly one of dataset/graph
        if request.dataset is not None and request.dataset not in ds.dataset_names(
            include_rgg=True
        ):
            return "unknown_dataset"
        return None

    # -- workers -------------------------------------------------------------

    async def _worker(self, wid: int) -> None:
        assert self._queue is not None
        while True:
            pend = await self._queue.get()
            try:
                if pend is None:
                    return
                metrics.set_gauge(
                    "repro_serve_queue_depth", float(self._queue.qsize())
                )
                try:
                    await self._process(pend)
                except Exception as exc:
                    # A worker must never die with a request in hand:
                    # whatever escaped _process becomes the terminal
                    # answer and the worker loops on ("respawned").
                    self._finish(
                        pend,
                        "failed",
                        reason=f"internal_error:{type(exc).__name__}: {exc}",
                    )
            finally:
                self._queue.task_done()

    async def _process(self, pend: _Pending) -> None:
        request = pend.request
        try:
            graph, fingerprint = await self._acquire_graph(pend)
        except DeadlineExceeded:
            self._finish(pend, "timeout", reason="deadline")
            return
        except Exception as exc:
            self._finish(
                pend, "failed", reason=f"dataset_error:{type(exc).__name__}: {exc}"
            )
            return

        # Degradation rung 1: the result cache (also re-probed on
        # timeout below — an identical in-flight request may have
        # landed meanwhile).
        if self._try_cache(pend, fingerprint):
            return
        if pend.expired():
            self._finish(pend, "timeout", reason="deadline")
            return

        breaker = self.breakers.get(request.dataset_label, pend.backend)
        if not breaker.allow():
            await self._degrade(pend, graph, fingerprint, "breaker_open")
            return

        # Primary compute: retry-with-backoff on transient failures.
        while True:
            pend.attempts += 1
            try:
                result = await self._attempt(
                    pend, request.impl, graph, pend.attempts - 1
                )
            except DeadlineExceeded:
                if self._try_cache(pend, fingerprint):
                    return
                self._finish(pend, "timeout", reason="deadline")
                return
            except TransientFaultError as exc:
                self._record_breaker(pend, ok=False)
                if isinstance(exc, WorkerKillFault):
                    metrics.inc(
                        "repro_serve_worker_kills_total",
                        dataset=request.dataset_label,
                    )
                if pend.attempts <= self.config.retries:
                    metrics.inc(
                        "repro_serve_retries_total",
                        dataset=request.dataset_label,
                        impl=request.impl,
                    )
                    runlog.emit(
                        "serve_retry",
                        request_id=request.request_id,
                        impl=request.impl,
                        attempt=pend.attempts,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    await asyncio.sleep(self._backoff(pend))
                    continue
                await self._degrade(
                    pend,
                    graph,
                    fingerprint,
                    f"retries_exhausted:{type(exc).__name__}",
                )
                return
            except Exception as exc:
                # Deterministic failure: retrying the same seed would
                # fail the same way — degrade instead.
                self._record_breaker(pend, ok=False)
                await self._degrade(
                    pend, graph, fingerprint, f"error:{type(exc).__name__}"
                )
                return
            else:
                self._record_breaker(pend, ok=True)
                entry = CachedResult(
                    impl=request.impl,
                    backend=pend.backend,
                    colors=result.colors,
                    num_colors=result.num_colors,
                    coloring_sha256=coloring_sha256(result.colors),
                    sim_ms=result.sim_ms,
                    iterations=result.iterations,
                )
                self.cache.put(fingerprint, request.seed, entry)
                self._finish_with_result(
                    pend, entry, status="ok", source="computed"
                )
                return

    def _backoff(self, pend: _Pending) -> float:
        delay = min(
            _RETRY_BACKOFF_S * (2 ** (pend.attempts - 1)),
            _RETRY_BACKOFF_CAP_S,
        )
        remaining = pend.remaining()
        if remaining is not None:
            delay = max(0.0, min(delay, remaining))
        return delay

    async def _degrade(
        self, pend: _Pending, graph, fingerprint: str, reason: str
    ) -> None:
        """Walk the fallback ladder; shed if it runs dry."""
        request = pend.request
        if not self.config.degrade:
            self._finish(pend, "failed", reason=reason)
            return
        for fallback in ladder(request.impl):
            if pend.expired():
                self._finish(pend, "timeout", reason="deadline")
                return
            try:
                result = await self._attempt(pend, fallback, graph, 0)
            except DeadlineExceeded:
                self._finish(pend, "timeout", reason="deadline")
                return
            except Exception as exc:
                runlog.emit(
                    "serve_fallback_failed",
                    request_id=request.request_id,
                    impl=fallback,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            metrics.inc(
                "repro_serve_degraded_total",
                dataset=request.dataset_label,
                impl=request.impl,
            )
            runlog.emit(
                "serve_degraded",
                request_id=request.request_id,
                impl=request.impl,
                impl_used=fallback,
                reason=reason,
            )
            entry = CachedResult(
                impl=fallback,
                backend=pend.backend,
                colors=result.colors,
                num_colors=result.num_colors,
                coloring_sha256=coloring_sha256(result.colors),
                sim_ms=result.sim_ms,
                iterations=result.iterations,
            )
            self._finish_with_result(
                pend,
                entry,
                status="degraded",
                source="computed",
                reason=reason,
            )
            return
        self._shed(pend, f"ladder_exhausted:{reason}")

    # -- compute -------------------------------------------------------------

    async def _acquire_graph(self, pend: _Pending) -> Tuple[object, str]:
        """The request's graph plus its fingerprint, off-loop (dataset
        generation and MB-scale hashing don't belong on the event
        loop)."""
        request = pend.request
        scale_div = (
            request.scale_div
            if request.scale_div is not None
            else self.config.scale_div
        )
        return await self._off_loop(
            pend, _load_and_fingerprint, request, scale_div
        )

    async def _attempt(
        self, pend: _Pending, impl: str, graph, attempt: int
    ):
        """One compute attempt in the thread pool, deadline-bounded."""
        return await self._off_loop(
            pend, _blocking_attempt, pend, impl, graph, attempt
        )

    async def _off_loop(self, pend: _Pending, fn, *args):
        remaining = pend.remaining()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceeded(
                f"request {pend.request.request_id} out of budget"
            )
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        fut = loop.run_in_executor(self._executor, fn, *args)
        try:
            return await asyncio.wait_for(fut, timeout=remaining)
        except asyncio.TimeoutError:
            # Cooperative cancellation: a thread that has not started
            # yet sees the flag and bails; one mid-kernel finishes into
            # a discarded future (its thread frees up afterwards).
            pend.cancel_event.set()
            raise DeadlineExceeded(
                f"request {pend.request.request_id} deadline expired"
            ) from None

    # -- terminal responses --------------------------------------------------

    def _try_cache(self, pend: _Pending, fingerprint: str) -> bool:
        request = pend.request
        entry = self.cache.get(
            fingerprint, request.impl, pend.backend, request.seed
        )
        if entry is None:
            return False
        self._finish_with_result(pend, entry, status="ok", source="cache")
        return True

    def _finish_with_result(
        self,
        pend: _Pending,
        entry: CachedResult,
        *,
        status: str,
        source: str,
        reason: str = "",
    ) -> None:
        self._finish(
            pend,
            status,
            reason=reason,
            degraded=(status == "degraded"),
            impl_used=entry.impl,
            source=source,
            colors=entry.colors,
            num_colors=entry.num_colors,
            coloring_sha256=entry.coloring_sha256,
            sim_ms=entry.sim_ms,
            iterations=entry.iterations,
        )

    def _shed(self, pend: _Pending, reason: str) -> None:
        metrics.inc(
            "repro_serve_shed_total",
            reason=reason.split(":", 1)[0],
        )
        runlog.emit(
            "serve_shed",
            request_id=pend.request.request_id,
            reason=reason,
        )
        self._finish(pend, "rejected", reason=reason)

    def _record_breaker(self, pend: _Pending, *, ok: bool) -> None:
        dataset = pend.request.dataset_label
        transition = self.breakers.record(dataset, pend.backend, ok=ok)
        if transition is not None:
            runlog.emit(
                "serve_breaker",
                transition=transition,
                dataset=dataset,
                backend=pend.backend,
            )

    def _finish(self, pend: _Pending, status: str, **fields) -> None:
        """Resolve the request exactly once with a terminal response."""
        if pend.future.done():
            return
        latency_s = time.monotonic() - pend.submitted_at
        response = ColoringResponse(
            request_id=pend.request.request_id,
            status=status,
            impl=pend.request.impl,
            dataset=pend.request.dataset_label,
            backend=pend.backend,
            attempts=pend.attempts,
            latency_s=latency_s,
            **fields,
        )
        metrics.inc("repro_serve_requests_total", outcome=status)
        metrics.observe("repro_serve_latency_ms", latency_s * 1000.0)
        runlog.emit(
            "serve_done",
            request_id=response.request_id,
            status=status,
            impl_used=response.impl_used,
            source=response.source,
            attempts=response.attempts,
            latency_ms=round(latency_s * 1000.0, 3),
        )
        pend.future.set_result(response)


# -- thread-pool bodies (no event-loop state) ---------------------------------


def _load_and_fingerprint(request: ColoringRequest, scale_div: int):
    if request.graph is not None:
        graph = request.graph
    else:
        graph = ds.load(
            request.dataset, scale_div=scale_div, seed=request.seed
        )
    return graph, graph_fingerprint(graph)


def _blocking_attempt(pend: _Pending, impl: str, graph, attempt: int):
    request = pend.request
    if pend.cancel_event.is_set():
        raise DeadlineExceeded(
            f"request {request.request_id} cancelled before attempt"
        )
    faults.maybe_fire_serve(request.dataset_label, impl, attempt)
    return run_algorithm(
        impl, graph, rng=request.seed, backend=pend.backend or None
    )
