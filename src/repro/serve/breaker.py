"""Per-(dataset, backend) circuit breakers for the coloring service.

A dataset/backend pair that keeps failing — a poisoned cache entry, a
generator bug, an injected fault storm — should stop consuming worker
attempts and retry budgets.  Each pair gets the classic three-state
breaker:

``closed``
    Normal operation.  Consecutive failures are counted; reaching
    ``threshold`` opens the breaker.
``open``
    Primary compute is skipped (requests go straight to the
    degradation ladder) until ``cooldown_s`` has elapsed.
``half_open``
    After the cooldown one probe request is let through.  Success
    closes the breaker; failure re-opens it and restarts the cooldown.

The clock is injectable (monotonic seconds) so tests can drive the
state machine without sleeping.  State transitions are counted into
:mod:`repro.metrics` (``repro_serve_breaker_transitions_total``) and
emitted to the run log by the server.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from .. import metrics

__all__ = ["CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One breaker: consecutive-failure threshold + cooldown probe."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = CLOSED
        self.failures = 0  # consecutive failures while closed
        self._opened_at: Optional[float] = None

    def allow(self) -> bool:
        """Whether a primary compute attempt may proceed right now.

        In ``open`` state, returns True exactly once per elapsed
        cooldown — the half-open probe; further calls return False
        until that probe settles via :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                return True  # the probe
            return False
        return False  # half-open: probe already in flight

    def record_success(self) -> Optional[str]:
        """Note a successful primary attempt; returns the transition
        (``"close"``) if one happened."""
        transition = None
        if self.state != CLOSED:
            transition = "close"
        self.state = CLOSED
        self.failures = 0
        self._opened_at = None
        return transition

    def record_failure(self) -> Optional[str]:
        """Note a failed primary attempt; returns the transition
        (``"open"`` / ``"reopen"``) if one happened."""
        if self.state == HALF_OPEN:
            self.state = OPEN
            self._opened_at = self._clock()
            return "reopen"
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.threshold:
            self.state = OPEN
            self._opened_at = self._clock()
            return "open"
        return None


class BreakerBoard:
    """The service's breakers, one per (dataset, backend) pair."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._threshold = threshold
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def get(self, dataset: str, backend: str) -> CircuitBreaker:
        key = (dataset, backend)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                threshold=self._threshold,
                cooldown_s=self._cooldown_s,
                clock=self._clock,
            )
        return breaker

    def record(
        self, dataset: str, backend: str, *, ok: bool
    ) -> Optional[str]:
        """Feed one primary-attempt outcome; publishes any transition
        to metrics and returns it for the server's log event."""
        breaker = self.get(dataset, backend)
        transition = (
            breaker.record_success() if ok else breaker.record_failure()
        )
        if transition is not None:
            metrics.inc(
                "repro_serve_breaker_transitions_total",
                transition=transition,
                dataset=dataset,
                backend=backend,
            )
        return transition
