"""The degradation ladder: which cheaper implementation stands in.

Chen et al. ("Efficient and High-quality Sparse Graph Coloring on the
GPU", PAPERS.md) frame coloring variants as a quality/latency
trade-off; the service exploits that under pressure.  When the
requested implementation cannot answer — its circuit breaker is open,
it failed deterministically, or retries were exhausted — the ladder
walks to progressively cheaper implementations instead of dropping the
request, and the response is flagged ``degraded`` with the fallback's
id in ``impl_used``.

The ladder below steps each simulated-GPU implementation toward
``cpu.greedy``, the closed-form sequential baseline that cannot
meaningfully fail: the GraphBLAS family first retreats to its cheapest
member, the multi-phase Gunrock variants to single-iteration
``gunrock.hash``, and everything bottoms out at ``cpu.greedy``.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["FALLBACKS", "ladder"]

#: impl -> the next-cheaper implementation (one step of the ladder).
#: Implementations absent from the map (``cpu.greedy``) have no
#: fallback: exhausting the ladder sheds the request.
FALLBACKS: Dict[str, str] = {
    "graphblas.is": "graphblas.jpl",
    "graphblas.mis": "graphblas.jpl",
    "graphblas.jpl": "cpu.greedy",
    "gunrock.is": "gunrock.hash",
    "gunrock.is_atomics": "gunrock.hash",
    "gunrock.is_single": "gunrock.hash",
    "gunrock.ar": "gunrock.hash",
    "gunrock.hash": "cpu.greedy",
    "naumov.jpl": "cpu.greedy",
    "naumov.cc": "cpu.greedy",
    "gpu.speculative": "cpu.greedy",
    # Distributed variants degrade to their single-device counterpart
    # first (drops the interconnect, keeps the algorithm), then follow
    # its ladder down to greedy.
    "dist.jpl": "naumov.jpl",
    "dist.speculative": "gpu.speculative",
    "reference.jp": "cpu.greedy",
    "reference.luby": "cpu.greedy",
    # CPU ordering variants: the quality orderings cost extra passes;
    # first-fit natural order is the one that cannot meaningfully fail.
    "cpu.dsatur": "cpu.greedy",
    "cpu.gm": "cpu.greedy",
    "cpu.rlf": "cpu.greedy",
    "cpu.greedy_lf": "cpu.greedy",
    "cpu.greedy_sl": "cpu.greedy",
    "cpu.greedy_random": "cpu.greedy",
    "cpu.greedy_natural": "cpu.greedy",
}


def ladder(impl: str) -> List[str]:
    """The fallback chain for ``impl``, cheapest last, ``impl`` itself
    excluded.  Cycle-safe: a miswired FALLBACKS map can't loop."""
    chain: List[str] = []
    seen = {impl}
    current = impl
    while True:
        nxt = FALLBACKS.get(current)
        if nxt is None or nxt in seen:
            return chain
        chain.append(nxt)
        seen.add(nxt)
        current = nxt
