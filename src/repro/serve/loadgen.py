"""Bursty Zipf-over-datasets load generation for the coloring service.

Production traffic is not uniform: a few datasets are hot, most are
cold, and arrivals come in bursts.  :func:`build_schedule` synthesizes
that shape deterministically from one seed — dataset popularity follows
a Zipf law over the configured list (rank ``r`` drawn with probability
``∝ r^-s``), implementations are drawn uniformly, seeds rotate through
a small pool (so the result cache sees both hits and misses), and
arrival times alternate tight bursts with exponential idle gaps.

:func:`run_load` replays a schedule through a fresh in-process
:class:`~repro.serve.client.ServeClient`, keeping requests in flight
concurrently (saturation is the point — chaos tests need to see the
admission queue shed), then summarizes the terminal responses into a
snapshot dict: outcome counts, shed reasons, degraded/cache tallies,
exact p50/p95/p99 latencies, and — the invariant the chaos CI job
asserts — the number of **unanswered** requests, which must be zero.
The quantiles are also published to :mod:`repro.metrics` as
``repro_serve_latency_quantile_ms{q=...}`` gauges next to the server's
own histogram.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import metrics
from .._rng import DEFAULT_SEED, ensure_rng
from .client import ServeClient
from .request import ColoringRequest, ColoringResponse
from .server import ServeConfig

__all__ = ["LoadSpec", "ScheduledRequest", "build_schedule", "run_load", "write_snapshot"]

#: Seed stride between the rotating request seeds (the grid runner's
#: repetition stride, reused so serve seeds land on familiar values).
_SEED_STRIDE = 7919


@dataclass
class LoadSpec:
    """Shape of one synthetic traffic run."""

    requests: int = 60
    datasets: Sequence[str] = ("ecology2", "offshore", "G3_circuit")
    impls: Sequence[str] = ("gunrock.hash", "graphblas.mis", "cpu.greedy")
    zipf_s: float = 1.2  # Zipf exponent over the dataset list
    seed: int = DEFAULT_SEED  # schedule AND request-seed base
    scale_div: int = 512  # small graphs: load tests stress the service
    deadline_s: Optional[float] = None  # per-request deadline
    unique_seeds: int = 4  # rotating request-seed pool size
    burst: int = 8  # mean requests per burst
    burst_gap_s: float = 0.05  # mean idle gap between bursts
    within_burst_gap_s: float = 0.0  # arrival spacing inside a burst


@dataclass
class ScheduledRequest:
    """One arrival: when (seconds from start) and what to ask."""

    at_s: float
    request: ColoringRequest


def _zipf_probs(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    return weights / weights.sum()


def build_schedule(spec: LoadSpec) -> List[ScheduledRequest]:
    """The deterministic arrival schedule for one :class:`LoadSpec`.

    Same spec ⇒ same schedule, bit for bit: every draw comes from one
    :func:`repro._rng.ensure_rng` generator seeded by ``spec.seed``.
    """
    if spec.requests < 1:
        raise ValueError("loadgen requests must be >= 1")
    if not spec.datasets or not spec.impls:
        raise ValueError("loadgen needs at least one dataset and impl")
    rng = ensure_rng(spec.seed)
    probs = _zipf_probs(len(spec.datasets), spec.zipf_s)
    schedule: List[ScheduledRequest] = []
    t = 0.0
    burst_left = int(rng.integers(1, 2 * spec.burst + 1))
    for i in range(spec.requests):
        if burst_left == 0:
            t += spec.burst_gap_s * float(rng.exponential(1.0))
            burst_left = int(rng.integers(1, 2 * spec.burst + 1))
        else:
            t += spec.within_burst_gap_s
        burst_left -= 1
        dataset = spec.datasets[int(rng.choice(len(spec.datasets), p=probs))]
        impl = spec.impls[int(rng.integers(0, len(spec.impls)))]
        seed = spec.seed + _SEED_STRIDE * int(
            rng.integers(0, spec.unique_seeds)
        )
        schedule.append(
            ScheduledRequest(
                at_s=t,
                request=ColoringRequest(
                    impl=impl,
                    dataset=dataset,
                    seed=seed,
                    deadline_s=spec.deadline_s,
                    scale_div=spec.scale_div,
                    request_id=f"load-{i:05d}",
                ),
            )
        )
    return schedule


def _percentile(latencies_ms: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies_ms, dtype=np.float64), q))


def run_load(
    spec: LoadSpec,
    config: Optional[ServeConfig] = None,
    *,
    response_timeout_s: float = 120.0,
) -> Dict:
    """Replay a schedule through a fresh in-process service.

    Every scheduled request is submitted (concurrently, honoring the
    arrival times) and every future is collected with a generous
    timeout — a future that fails to resolve is counted as
    ``unanswered`` instead of hanging the generator, so the no-silent-
    drops contract is *measured*, not assumed.
    """
    schedule = build_schedule(spec)
    responses: List[Optional[ColoringResponse]] = [None] * len(schedule)
    started = time.monotonic()
    with ServeClient(config) as client:
        futures = []
        for item in schedule:
            delay = item.at_s - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            futures.append(client.submit_async(item.request))
        for i, future in enumerate(futures):
            try:
                responses[i] = future.result(timeout=response_timeout_s)
            except Exception:
                responses[i] = None  # unanswered: the failure we measure
    wall_s = time.monotonic() - started

    outcomes: Dict[str, int] = {}
    shed_reasons: Dict[str, int] = {}
    latencies_ms: List[float] = []
    cache_hits = 0
    attempts_total = 0
    for response in responses:
        if response is None:
            continue
        outcomes[response.status] = outcomes.get(response.status, 0) + 1
        latencies_ms.append(response.latency_s * 1000.0)
        attempts_total += response.attempts
        if response.status == "rejected":
            reason = response.reason.split(":", 1)[0]
            shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
        if response.source == "cache":
            cache_hits += 1
    unanswered = sum(1 for r in responses if r is None)
    quantiles = (
        {
            "p50": _percentile(latencies_ms, 50),
            "p95": _percentile(latencies_ms, 95),
            "p99": _percentile(latencies_ms, 99),
        }
        if latencies_ms
        else {}
    )
    for q, value in quantiles.items():
        metrics.set_gauge("repro_serve_latency_quantile_ms", value, q=q)
    snapshot = {
        "spec": {
            "requests": spec.requests,
            "datasets": list(spec.datasets),
            "impls": list(spec.impls),
            "zipf_s": spec.zipf_s,
            "seed": spec.seed,
            "scale_div": spec.scale_div,
            "deadline_s": spec.deadline_s,
        },
        "wall_s": wall_s,
        "answered": len(schedule) - unanswered,
        "unanswered": unanswered,
        "outcomes": outcomes,
        "shed_reasons": shed_reasons,
        "degraded": outcomes.get("degraded", 0),
        "cache_hits": cache_hits,
        "attempts_total": attempts_total,
        "latency_ms": quantiles,
    }
    return snapshot


def write_snapshot(snapshot: Dict, path) -> None:
    """Write a :func:`run_load` snapshot as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
