"""Result cache and graph fingerprinting for the coloring service.

The first rung of the degradation ladder: when the service has already
colored the *same* graph with the same implementation and seed, it
answers from memory instead of spending a worker.  Because the
reproduction is deterministic — same (graph, impl, backend, seed) ⇒
bit-identical colors, ``sim_ms``, iterations — a cache hit is
indistinguishable from a fresh run, so cached responses keep status
``ok`` (``source="cache"``) and the bit-exactness contract.

The cache key starts from :func:`graph_fingerprint`, a content hash of
the CSR arrays in the style of :meth:`repro.trace.Trace.fingerprint`:
a 16-hex-digit SHA-256 prefix over the vertex/edge counts and the raw
``offsets``/``indices`` bytes.  It depends on nothing but the graph's
structure — not its name, not the backend, not whether tracing or
metrics are on, not which worker computes it — which is exactly the
stability property the hypothesis suite locks down
(``tests/test_serve_cache.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import metrics

__all__ = ["graph_fingerprint", "CachedResult", "ResultCache"]


def graph_fingerprint(graph) -> str:
    """A 16-hex-digit content hash of a CSR graph's structure.

    Two graphs with identical ``offsets``/``indices`` arrays (and hence
    identical vertex/edge counts) share a fingerprint regardless of
    name, construction path, or ambient observability state; any
    structural mutation — one edge added, removed, or rewired —
    changes it.
    """
    h = hashlib.sha256()
    h.update(f"{graph.num_vertices}\x1f{graph.num_edges}\x1e".encode())
    h.update(np.ascontiguousarray(graph.offsets).tobytes())
    h.update(np.ascontiguousarray(graph.indices).tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class CachedResult:
    """The bit-exact scalars (plus the color array) of one ``ok`` run."""

    impl: str
    backend: str
    colors: np.ndarray
    num_colors: int
    coloring_sha256: str
    sim_ms: float
    iterations: int


class ResultCache:
    """A bounded LRU cache of completed colorings.

    Keyed by ``(graph_fingerprint, impl, backend, seed)`` — everything
    the deterministic contract says the result depends on.  Only
    non-degraded primary results are stored, so a hit can always be
    served as ``ok``.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str, str, int], CachedResult]" = (
            OrderedDict()
        )

    @staticmethod
    def key(
        fingerprint: str, impl: str, backend: str, seed: int
    ) -> Tuple[str, str, str, int]:
        return (fingerprint, impl, backend, int(seed))

    def get(
        self, fingerprint: str, impl: str, backend: str, seed: int
    ) -> Optional[CachedResult]:
        key = self.key(fingerprint, impl, backend, seed)
        entry = self._entries.get(key)
        if entry is None:
            metrics.inc("repro_serve_cache_misses_total")
            return None
        self._entries.move_to_end(key)
        metrics.inc("repro_serve_cache_hits_total")
        return entry

    def put(
        self,
        fingerprint: str,
        seed: int,
        entry: CachedResult,
    ) -> None:
        key = self.key(fingerprint, entry.impl, entry.backend, seed)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        metrics.set_gauge("repro_serve_cache_size", float(len(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
