"""Synchronous in-process client for the coloring service.

Tests, the CLI, and the load generator are synchronous; the server is
an asyncio object.  :class:`ServeClient` bridges the two by running a
private event loop on a daemon thread and proxying submissions with
:func:`asyncio.run_coroutine_threadsafe` — the "in-process client" the
service contract promises, with no sockets involved.

Usage::

    from repro.serve import ColoringRequest, ServeClient, ServeConfig

    with ServeClient(ServeConfig(workers=2, queue_limit=8)) as client:
        response = client.submit(
            ColoringRequest(impl="gunrock.hash", dataset="ecology2")
        )
    assert response.status == "ok"

``submit`` blocks for the terminal response; ``submit_async`` returns
a :class:`concurrent.futures.Future` so callers can keep many requests
in flight (that is how the load generator saturates the admission
queue).  Call :meth:`stop` (or leave the ``with`` block) only after
collecting outstanding ``submit_async`` futures — a stopped loop can
no longer resolve them.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Optional

from .request import ColoringRequest, ColoringResponse
from .server import ColoringServer, ServeConfig

__all__ = ["ServeClient"]


class ServeClient:
    """A synchronous facade over one in-process :class:`ColoringServer`."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self._config = config or ServeConfig()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[ColoringServer] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServeClient":
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        self._server = ColoringServer(self._config)
        self._call(self._server.start())
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the server (resolving every admitted request) and tear
        down the loop thread."""
        if self._loop is None:
            return
        assert self._server is not None and self._thread is not None
        self._call(self._server.stop(drain=drain))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        self._loop = None
        self._thread = None
        self._server = None

    def __enter__(self) -> "ServeClient":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- submission ----------------------------------------------------------

    @property
    def server(self) -> ColoringServer:
        """The underlying server (tests poke its cache and breakers)."""
        if self._server is None:
            raise RuntimeError("ServeClient is not started")
        return self._server

    def submit(self, request: ColoringRequest) -> ColoringResponse:
        """Submit one request; blocks for its terminal response."""
        return self.submit_async(request).result()

    def submit_async(
        self, request: ColoringRequest
    ) -> "concurrent.futures.Future[ColoringResponse]":
        """Submit without blocking; the returned future resolves to the
        terminal response."""
        if self._loop is None or self._server is None:
            raise RuntimeError("ServeClient is not started")
        return asyncio.run_coroutine_threadsafe(
            self._server.submit(request), self._loop
        )

    def _call(self, coro):
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()
