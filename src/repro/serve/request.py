"""Request and response types for the coloring service.

A :class:`ColoringRequest` names either a harness dataset (generated
and cached exactly as the grid runner would) or carries an inline
:class:`~repro.graph.csr.CSRGraph`, plus the implementation id, the
kernel-execution backend, the RNG seed, and an optional per-request
deadline.  A :class:`ColoringResponse` is the *terminal* answer every
submitted request is guaranteed to receive — one of the five statuses
below, never a silent drop.

Statuses
--------

``ok``
    Colored with the requested implementation (or served from the
    result cache, which stores exactly those runs).  Bit-identical to
    a direct :func:`repro.core.registry.run_algorithm` call with the
    same (graph, impl, backend, seed).
``degraded``
    Colored by a cheaper fallback implementation from the degradation
    ladder (:mod:`repro.serve.degrade`); ``impl_used`` names it and
    ``degrade_reason`` says why the requested one was abandoned.
``rejected``
    Load-shed with a reason before any compute happened (queue full,
    service shutting down, unknown dataset/implementation, or the
    degradation ladder itself was exhausted).
``timeout``
    The per-request deadline expired before a result was produced.
``failed``
    A deterministic (non-retryable) error with no fallback available
    and degradation disabled; ``reason`` carries the error.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .._rng import DEFAULT_SEED
from ..graph.csr import CSRGraph

__all__ = [
    "TERMINAL_STATUSES",
    "ColoringRequest",
    "ColoringResponse",
]

#: Every response carries exactly one of these.
TERMINAL_STATUSES = frozenset(
    {"ok", "degraded", "rejected", "timeout", "failed"}
)


@dataclass
class ColoringRequest:
    """One coloring job submitted to the service.

    Exactly one of ``dataset`` (a harness dataset name, generated via
    :func:`repro.harness.datasets.load` with ``scale_div``/``seed``) or
    ``graph`` (an inline CSR) must be given.  ``seed`` feeds both the
    dataset generator and the algorithm RNG, mirroring the grid
    runner's rep-0 seeding, so a direct
    ``run_algorithm(impl, ds.load(dataset, scale_div, seed), rng=seed)``
    reproduces a non-degraded response bit for bit.
    """

    impl: str
    dataset: Optional[str] = None
    graph: Optional[CSRGraph] = None
    seed: int = DEFAULT_SEED
    backend: Optional[str] = None
    deadline_s: Optional[float] = None
    scale_div: Optional[int] = None
    request_id: str = ""

    @property
    def dataset_label(self) -> str:
        """The dataset name used in metrics labels, log events, and
        fault-clause matching (``"inline"`` for inline graphs)."""
        if self.dataset:
            return self.dataset
        if self.graph is not None and self.graph.name:
            return self.graph.name
        return "inline"


@dataclass
class ColoringResponse:
    """The terminal answer to one :class:`ColoringRequest`."""

    request_id: str
    status: str  # ok | degraded | rejected | timeout | failed
    impl: str = ""  # the implementation the request asked for
    dataset: str = ""
    backend: str = ""
    reason: str = ""  # why rejected / timed out / failed / degraded
    degraded: bool = False
    impl_used: str = ""  # implementation that produced colors ("" = none)
    source: str = ""  # computed | cache | "" (no result)
    colors: Optional[np.ndarray] = field(default=None, repr=False)
    num_colors: Optional[int] = None
    coloring_sha256: Optional[str] = None
    sim_ms: Optional[float] = None
    iterations: Optional[int] = None
    attempts: int = 0  # compute attempts consumed (retries + 1)
    latency_s: float = 0.0  # submission -> response wall clock

    def __post_init__(self) -> None:
        if self.status not in TERMINAL_STATUSES:
            raise ValueError(
                f"non-terminal response status {self.status!r}; "
                f"expected one of {sorted(TERMINAL_STATUSES)}"
            )

    @property
    def has_result(self) -> bool:
        """Whether the response carries a coloring."""
        return self.colors is not None

    def to_json_dict(self) -> dict:
        """JSONL-safe form (the raw color array is summarized by its
        SHA-256, already present) — what the ``serve`` CLI writes."""
        return {
            "request_id": self.request_id,
            "status": self.status,
            "impl": self.impl,
            "dataset": self.dataset,
            "backend": self.backend,
            "reason": self.reason,
            "degraded": self.degraded,
            "impl_used": self.impl_used,
            "source": self.source,
            "num_colors": self.num_colors,
            "coloring_sha256": self.coloring_sha256,
            "sim_ms": self.sim_ms,
            "iterations": self.iterations,
            "attempts": self.attempts,
            "latency_s": self.latency_s,
        }


def coloring_sha256(colors: np.ndarray) -> str:
    """The golden suite's digest of a raw color array."""
    return hashlib.sha256(colors.tobytes()).hexdigest()
