"""Pluggable kernel-execution backends.

The hot loops of every implementation run through the small primitive
set of :class:`~repro.backend.base.Backend` (scatter reductions,
segmented reductions, fused coloring kernels, vxm combine, frontier
compaction).  This module owns backend *selection*:

* :func:`resolve` maps a requested name (explicit argument →
  ``REPRO_BACKEND`` environment variable → ``"reference"``) to a
  backend instance.  Optional backends that cannot load (numba not
  installed, no C compiler) warn **once** and resolve to the reference
  backend — so the *effective* backend name, ``resolve(...).name``, is
  what flows into journal config hashes, trace/metrics labels and the
  BENCH environment fingerprint.
* :func:`use` scopes a backend for the duration of a run (the runner
  and ``run_algorithm`` wrap every execution in it).
* :func:`current` is what call sites dispatch through.

Backends are interchangeable by contract: all simulated quantities are
bit-identical whichever backend executes (docs/backends.md), enforced
by the golden-trajectory and property suites.

Known backends:

``reference``
    Interpreted numpy; always available (:mod:`.reference`).
``cnative``
    Fused C kernels compiled on first use with the system C compiler
    (:mod:`.cnative`); falls back to reference when no compiler exists.
``numba``
    The same fused kernels as ``@njit`` loops (:mod:`.numba_backend`);
    falls back to reference when numba is not installed.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, List, Optional, Union

from .base import Backend, BackendError
from .reference import ReferenceBackend

__all__ = [
    "Backend",
    "BackendError",
    "ReferenceBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KNOWN_BACKENDS",
    "available_backends",
    "current",
    "resolve",
    "use",
]

DEFAULT_BACKEND = "reference"

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"

#: Names :func:`resolve` accepts, in documentation order.
KNOWN_BACKENDS = ("reference", "numba", "cnative")

_instances: Dict[str, Backend] = {}
_warned: set = set()
_stack: List[Backend] = []


def _load_optional(name: str):
    if name == "numba":
        from . import numba_backend

        return numba_backend.load()
    from . import cnative

    return cnative.load()


def resolve(name: Union[str, Backend, None] = None) -> Backend:
    """Resolve a backend request to an instance.

    ``None`` (or ``""``) consults ``$REPRO_BACKEND`` and defaults to
    the reference backend.  An unavailable optional backend warns once
    per process and resolves to reference, so callers can rely on the
    returned instance's ``.name`` as the effective label.  Unknown
    names raise :class:`BackendError`.
    """
    if isinstance(name, Backend):
        return name
    if not name:
        name = os.environ.get(ENV_VAR, "") or DEFAULT_BACKEND
    name = str(name)
    if name in _instances:
        return _instances[name]
    if name == "reference":
        backend: Backend = ReferenceBackend()
    elif name in KNOWN_BACKENDS:
        loaded, reason = _load_optional(name)
        if loaded is None:
            if name not in _warned:
                _warned.add(name)
                warnings.warn(
                    f"backend {name!r} unavailable ({reason}); "
                    "falling back to the reference backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
            backend = resolve("reference")
        else:
            backend = loaded
    else:
        raise BackendError(
            f"unknown backend {name!r}; known: {', '.join(KNOWN_BACKENDS)}"
        )
    _instances[name] = backend
    return backend


def current() -> Backend:
    """The backend hot loops dispatch through: the innermost
    :func:`use` scope, else the ambient (env/default) resolution."""
    if _stack:
        return _stack[-1]
    return resolve(None)


@contextmanager
def use(backend: Union[str, Backend, None] = None):
    """Scope ``backend`` (name or instance) as :func:`current`."""
    be = resolve(backend)
    _stack.append(be)
    try:
        yield be
    finally:
        _stack.pop()


def available_backends() -> List[str]:
    """Names that resolve to a genuinely distinct backend on this
    machine.  Probing bypasses the fallback-warning path entirely, so
    it neither warns nor consumes the warn-once budget of a later
    explicit selection."""
    names = [DEFAULT_BACKEND]
    for name in KNOWN_BACKENDS:
        if name == DEFAULT_BACKEND:
            continue
        if name in _instances:
            if _instances[name].name == name:
                names.append(name)
            continue
        loaded, _reason = _load_optional(name)
        if loaded is not None:
            _instances[name] = loaded
            names.append(name)
    return names


def _reset() -> None:
    """Test hook: forget cached instances, warnings, and scopes."""
    _instances.clear()
    _warned.clear()
    del _stack[:]
