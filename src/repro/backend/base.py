"""The kernel-execution backend protocol.

A :class:`Backend` executes the small set of data-parallel primitives
every hot loop in ``core/``, ``gunrock/`` and ``graphblas/`` is built
from — elementwise maps, scatter reductions, segmented reductions, the
fused coloring kernels (neighbor extrema, segmented mex, conflict
resolution), the GraphBLAS vxm combine, and frontier compaction.
Algorithms describe *what* to compute; the backend decides *how* the
inner loop runs (interpreted numpy, JIT, compiled C, eventually CuPy).

The contract every backend must honor (docs/backends.md):

* **Bit identity.**  For any inputs, a backend returns (or stores, for
  the in-place primitives) arrays bit-identical to the reference
  backend's.  All simulated quantities — colors, coloring sha256,
  ``sim_ms``, kernel counters, traces — are derived from these arrays,
  so swapping backends can never change a result, only wall-clock.
* **In-place semantics.**  ``scatter_reduce`` / ``scatter_hit`` update
  ``out`` (and ``hit``) in place, applying ``vals`` in index order —
  exactly ``np.ufunc.at``.  Float accumulation order is therefore part
  of the contract.
* **No cost-model interaction.**  Backends never touch the
  :class:`~repro.gpusim.cost_model.CostModel`; structural charges stay
  at the call sites, which is what keeps ``sim_ms`` backend-invariant.

A backend may decline an input shape or dtype it has no specialized
kernel for by delegating to the reference implementation (see
:meth:`Backend.fallback`); correctness is mandatory, acceleration is
best-effort.
"""

from __future__ import annotations

from typing import Callable, Tuple, Union

import numpy as np

from ..errors import ReproError

__all__ = ["Backend", "BackendError", "resolve_op", "OpLike"]

#: Operations accepted by the reduction primitives: a kind string or a
#: raw numpy ufunc (the GraphBLAS layer passes its monoid ufuncs).
OpLike = Union[str, np.ufunc]

_KIND_UFUNCS = {
    "max": np.maximum,
    "min": np.minimum,
    "sum": np.add,
    "add": np.add,
    "mul": np.multiply,
}


class BackendError(ReproError):
    """Unknown backend name or invalid backend configuration."""


def resolve_op(op: OpLike) -> np.ufunc:
    """Normalize a reduction op (kind string or ufunc) to the ufunc."""
    if isinstance(op, np.ufunc):
        return op
    try:
        return _KIND_UFUNCS[op]
    except KeyError:
        raise BackendError(
            f"unknown reduction op {op!r}; known kinds: "
            f"{', '.join(sorted(set(_KIND_UFUNCS)))}"
        ) from None


class Backend:
    """Abstract kernel-execution backend.

    Subclasses override the primitives they can accelerate and fall
    back to :attr:`fallback` (the reference backend) for everything
    else.  The base class implements every primitive by delegation, so
    a backend specializing a single kernel is already complete.
    """

    #: Selection name; also the label recorded in journals/traces/BENCH.
    name = "abstract"

    @property
    def fallback(self) -> "Backend":
        """The backend used for primitives this one does not specialize."""
        from .reference import ReferenceBackend

        if getattr(self, "_fallback", None) is None:
            self._fallback = ReferenceBackend()
        return self._fallback

    # -- generic primitives ------------------------------------------------

    def map_elementwise(self, fn: Callable, *arrays: np.ndarray):
        """Apply an elementwise kernel ``fn`` to ``arrays``.

        Elementwise maps are already fused vector code under numpy; the
        primitive exists as the dispatch seam a device backend (CuPy)
        needs, where the arrays live off-host.
        """
        return self.fallback.map_elementwise(fn, *arrays)

    def frontier_compact(self, mask: np.ndarray) -> np.ndarray:
        """Indices of the true entries of ``mask``, ascending
        (stream compaction — ``np.flatnonzero`` semantics)."""
        return self.fallback.frontier_compact(mask)

    # -- scatter / segmented reductions ------------------------------------

    def scatter_reduce(
        self, out: np.ndarray, idx: np.ndarray, vals: np.ndarray, op: OpLike
    ) -> None:
        """In-place ``resolve_op(op).at(out, idx, vals)``: fold each
        ``vals[k]`` into ``out[idx[k]]``, in index order."""
        self.fallback.scatter_reduce(out, idx, vals, op)

    def scatter_hit(
        self,
        out: np.ndarray,
        hit: np.ndarray,
        idx: np.ndarray,
        vals: np.ndarray,
        op: OpLike,
    ) -> None:
        """The GraphBLAS vxm/mxv combine: :meth:`scatter_reduce` fused
        with marking ``hit[idx] = True`` (structural presence)."""
        self.fallback.scatter_hit(out, hit, idx, vals, op)

    def segmented_reduce(
        self, values: np.ndarray, starts: np.ndarray, op: OpLike
    ) -> np.ndarray:
        """``resolve_op(op).reduceat(values, starts)``: reduce each
        segment ``values[starts[i]:starts[i+1]]`` (last runs to the
        end), with reduceat's single-element quirk for empty segments."""
        return self.fallback.segmented_reduce(values, starts, op)

    # -- fused coloring kernels --------------------------------------------

    def segmented_mex(
        self,
        colors: np.ndarray,
        indices: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        """Per-segment minimum excluded positive color.

        Segment ``s`` covers ``indices[starts[s] : starts[s] +
        counts[s]]`` (a CSR or sub-CSR neighbor list); the result is the
        smallest integer ``>= 1`` not among ``colors`` of those
        vertices, ignoring non-positive entries.  This is the level-sync
        greedy conflict scan, the JPL min-available step, and the
        speculative propose kernel.
        """
        return self.fallback.segmented_mex(colors, indices, starts, counts)

    def active_max(
        self,
        offsets: np.ndarray,
        indices: np.ndarray,
        keys: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Per-vertex max of ``keys`` over *active* neighbors of an
        undirected CSR (int64 min where none) — the independent-set
        selection scan."""
        return self.fallback.active_max(offsets, indices, keys, active)

    def active_extrema(
        self,
        offsets: np.ndarray,
        indices: np.ndarray,
        keys: np.ndarray,
        active: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex max *and* min of ``keys`` over active neighbors
        (the min-max IS optimization computes both in one pass)."""
        return self.fallback.active_extrema(offsets, indices, keys, active)

    def conflict_losers(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        colors: np.ndarray,
        prio: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Speculative-coloring conflict resolution: for every arc
        ``(src[k], dst[k])`` whose endpoints share a positive color and
        whose source is active, the lower-priority endpoint — in arc
        order, one entry per clashing arc."""
        return self.fallback.conflict_losers(src, dst, colors, prio, active)
