"""The reference backend: today's vectorized numpy, verbatim.

Every primitive here is a pure extraction of the code that used to live
inline at its call sites (``core/``, ``gunrock/``, ``graphblas/``); the
golden-trajectory suite pins the trajectories those loops produced, so
this module is the executable definition of the bit-identity contract
other backends are tested against.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .base import Backend, OpLike, resolve_op

__all__ = ["ReferenceBackend"]

_I64_MIN = np.iinfo(np.int64).min
_I64_MAX = np.iinfo(np.int64).max


class ReferenceBackend(Backend):
    """Interpreted-numpy execution of every primitive."""

    name = "reference"

    @property
    def fallback(self) -> Backend:
        return self

    def map_elementwise(self, fn: Callable, *arrays: np.ndarray):
        return fn(*arrays)

    def frontier_compact(self, mask: np.ndarray) -> np.ndarray:
        return np.flatnonzero(mask)

    def scatter_reduce(
        self, out: np.ndarray, idx: np.ndarray, vals: np.ndarray, op: OpLike
    ) -> None:
        resolve_op(op).at(out, idx, vals)

    def scatter_hit(
        self,
        out: np.ndarray,
        hit: np.ndarray,
        idx: np.ndarray,
        vals: np.ndarray,
        op: OpLike,
    ) -> None:
        resolve_op(op).at(out, idx, vals)
        hit[idx] = True

    def segmented_reduce(
        self, values: np.ndarray, starts: np.ndarray, op: OpLike
    ) -> np.ndarray:
        return resolve_op(op).reduceat(values, starts)

    def segmented_mex(
        self,
        colors: np.ndarray,
        indices: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        # Collect each segment's distinct positive neighbor colors sorted
        # ascending; the mex is one past the longest prefix matching
        # 1, 2, 3, …  (unique-encode + group-rank, fully vectorized).
        k = len(starts)
        if k == 0:
            return np.empty(0, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        out = np.ones(k, dtype=np.int64)
        if total == 0:
            return out
        arc_starts = np.repeat(np.asarray(starts, dtype=np.int64), counts)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        nbr_colors = colors[indices[arc_starts + ramp]]
        owner = np.repeat(np.arange(k, dtype=np.int64), counts)
        keep = nbr_colors > 0
        owner, nbr_colors = owner[keep], nbr_colors[keep]
        if len(owner) == 0:
            return out
        maxc = int(nbr_colors.max())
        enc = np.unique(owner * np.int64(maxc + 2) + nbr_colors)
        owner = enc // np.int64(maxc + 2)
        col = enc % np.int64(maxc + 2)
        sizes = np.bincount(owner, minlength=k)
        group_start = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        rank = np.arange(len(owner), dtype=np.int64) - group_start[owner]
        good = col == rank + 1
        out = sizes + 1  # default: colors form a full prefix 1..size
        bad = np.flatnonzero(~good)
        if len(bad):
            # First bad position per owner: positions ascend within
            # groups, so writing reversed makes the earliest win.
            first = np.full(k, -1, dtype=np.int64)
            first[owner[bad][::-1]] = bad[::-1]
            has = first >= 0
            out[has] = first[has] - group_start[has] + 1
        return out.astype(np.int64)

    def active_max(
        self,
        offsets: np.ndarray,
        indices: np.ndarray,
        keys: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        n = len(offsets) - 1
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        ok = active[src]
        out = np.full(n, _I64_MIN, dtype=np.int64)
        np.maximum.at(out, indices[ok], keys[src[ok]])
        return out

    def active_extrema(
        self,
        offsets: np.ndarray,
        indices: np.ndarray,
        keys: np.ndarray,
        active: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(offsets) - 1
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        ok = active[src]
        dst = indices[ok]
        vals = keys[src[ok]]
        nmax = np.full(n, _I64_MIN, dtype=np.int64)
        nmin = np.full(n, _I64_MAX, dtype=np.int64)
        np.maximum.at(nmax, dst, vals)
        np.minimum.at(nmin, dst, vals)
        return nmax, nmin

    def conflict_losers(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        colors: np.ndarray,
        prio: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        clash = (colors[src] == colors[dst]) & active[src] & (colors[src] > 0)
        return np.where(prio[src] < prio[dst], src, dst)[clash]
