"""The ``cnative`` backend: fused C kernels compiled on first use.

The profiled top kernels (``harness profile``) lose most of their wall
clock not in numpy's scatter itself — modern numpy has a fast indexed
loop for integer ``ufunc.at`` — but in the *chain* of full-arc
temporaries around it: ``np.repeat`` lane expansion, boolean-mask
compaction, two fancy gathers, then the scatter, each a separate pass
over arc-sized arrays.  The kernels here fuse that chain into a single
C pass over the CSR (one load per arc, zero temporaries), which is the
same memory-locality argument Gunrock makes for its fused
advance+compute operators.

The shared object is built once per source revision with the system C
compiler (``cc -O3``) and cached under
``$REPRO_BACKEND_CACHE`` (default ``~/.cache/repro/backend``).  When no
compiler is available :func:`load` reports the reason and the backend
layer falls back to reference — this backend is an accelerator, never a
requirement.

Bit identity with the reference backend is by construction:

* every routed kernel is exact int64 arithmetic (extrema, mex,
  conflict arbitration), where any correct evaluation order gives the
  same bits; or
* it applies updates sequentially in index order (scatter/segmented
  reductions), matching ``ufunc.at`` / ``reduceat`` semantics exactly,
  including float accumulation order and NaN propagation.

Unsupported dtypes or non-contiguous outputs delegate to the reference
implementation per call.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from .base import Backend, OpLike, resolve_op

__all__ = ["load", "CNativeBackend", "C_SOURCE"]

# One sequential loop per kernel; NaN guards mirror np.maximum/minimum
# (either operand NaN => NaN), and int64 accumulation goes through
# uint64 so overflow wraps exactly like numpy instead of being UB.
C_SOURCE = r"""
#include <stdint.h>

#define I64_ADD(a, b) ((int64_t)((uint64_t)(a) + (uint64_t)(b)))
#define I64_MUL(a, b) ((int64_t)((uint64_t)(a) * (uint64_t)(b)))

#define DEF_SCATTER(NAME, T, COMBINE)                                       \
void NAME(T *out, const int64_t *idx, const T *vals, int64_t m) {           \
    for (int64_t k = 0; k < m; ++k) {                                       \
        T v = vals[k];                                                      \
        T *o = out + idx[k];                                                \
        COMBINE;                                                            \
    }                                                                       \
}

#define DEF_SCATTER_HIT(NAME, T, COMBINE)                                   \
void NAME(T *out, uint8_t *hit, const int64_t *idx, const T *vals,          \
          int64_t m) {                                                      \
    for (int64_t k = 0; k < m; ++k) {                                       \
        int64_t i = idx[k];                                                 \
        T v = vals[k];                                                      \
        T *o = out + i;                                                     \
        COMBINE;                                                            \
        hit[i] = 1;                                                         \
    }                                                                       \
}

#define MAX_I64 if (v > *o) *o = v
#define MIN_I64 if (v < *o) *o = v
#define ADD_I64 *o = I64_ADD(*o, v)
#define MUL_I64 *o = I64_MUL(*o, v)
/* numpy maximum/minimum: NaN in either operand propagates. */
#define MAX_F64 if (v != v) *o = v; else if (*o == *o && v > *o) *o = v
#define MIN_F64 if (v != v) *o = v; else if (*o == *o && v < *o) *o = v
#define ADD_F64 *o = *o + v
#define MUL_F64 *o = *o * v

DEF_SCATTER(scatter_max_i64, int64_t, MAX_I64)
DEF_SCATTER(scatter_min_i64, int64_t, MIN_I64)
DEF_SCATTER(scatter_add_i64, int64_t, ADD_I64)
DEF_SCATTER(scatter_mul_i64, int64_t, MUL_I64)
DEF_SCATTER(scatter_max_f64, double, MAX_F64)
DEF_SCATTER(scatter_min_f64, double, MIN_F64)
DEF_SCATTER(scatter_add_f64, double, ADD_F64)
DEF_SCATTER(scatter_mul_f64, double, MUL_F64)

DEF_SCATTER_HIT(scatter_hit_max_i64, int64_t, MAX_I64)
DEF_SCATTER_HIT(scatter_hit_min_i64, int64_t, MIN_I64)
DEF_SCATTER_HIT(scatter_hit_add_i64, int64_t, ADD_I64)
DEF_SCATTER_HIT(scatter_hit_mul_i64, int64_t, MUL_I64)
DEF_SCATTER_HIT(scatter_hit_max_f64, double, MAX_F64)
DEF_SCATTER_HIT(scatter_hit_min_f64, double, MIN_F64)
DEF_SCATTER_HIT(scatter_hit_add_f64, double, ADD_F64)
DEF_SCATTER_HIT(scatter_hit_mul_f64, double, MUL_F64)

/* reduceat contract: segment s is vals[starts[s] : starts[s+1]] (the
 * last runs to nvals); an empty segment yields vals[starts[s]]. */
#define DEF_SEGREDUCE(NAME, T, COMBINE)                                     \
void NAME(T *out, const T *vals, const int64_t *starts, int64_t nseg,       \
          int64_t nvals) {                                                  \
    for (int64_t s = 0; s < nseg; ++s) {                                    \
        int64_t lo = starts[s];                                             \
        int64_t hi = (s + 1 < nseg) ? starts[s + 1] : nvals;                \
        T acc = vals[lo];                                                   \
        T *o = &acc;                                                        \
        for (int64_t k = lo + 1; k < hi; ++k) {                             \
            T v = vals[k];                                                  \
            COMBINE;                                                        \
        }                                                                   \
        out[s] = acc;                                                       \
    }                                                                       \
}

DEF_SEGREDUCE(segreduce_max_i64, int64_t, MAX_I64)
DEF_SEGREDUCE(segreduce_min_i64, int64_t, MIN_I64)
DEF_SEGREDUCE(segreduce_add_i64, int64_t, ADD_I64)
DEF_SEGREDUCE(segreduce_mul_i64, int64_t, MUL_I64)
DEF_SEGREDUCE(segreduce_max_f64, double, MAX_F64)
DEF_SEGREDUCE(segreduce_min_f64, double, MIN_F64)
DEF_SEGREDUCE(segreduce_add_f64, double, ADD_F64)
DEF_SEGREDUCE(segreduce_mul_f64, double, MUL_F64)

/* Fused IS-selection scan: fold keys[v] of every active v into its
 * neighbors' extrema slots (undirected CSR, so "active neighbors of d"
 * equals "active sources of arcs into d" — the exact scatter the
 * reference performs with repeat/mask/gather temporaries). */
void active_max_i64(int64_t *out, const int64_t *offsets,
                    const int64_t *indices, const int64_t *keys,
                    const uint8_t *active, int64_t n) {
    for (int64_t v = 0; v < n; ++v) {
        if (!active[v]) continue;
        int64_t kv = keys[v];
        for (int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
            int64_t d = indices[e];
            if (kv > out[d]) out[d] = kv;
        }
    }
}

void active_extrema_i64(int64_t *nmax, int64_t *nmin,
                        const int64_t *offsets, const int64_t *indices,
                        const int64_t *keys, const uint8_t *active,
                        int64_t n) {
    for (int64_t v = 0; v < n; ++v) {
        if (!active[v]) continue;
        int64_t kv = keys[v];
        for (int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
            int64_t d = indices[e];
            if (kv > nmax[d]) nmax[d] = kv;
            if (kv < nmin[d]) nmin[d] = kv;
        }
    }
}

/* Per-segment minimum excluded positive color via a stamped scratch
 * array (tag = s + 1 so no clearing between segments; stamp must hold
 * max(counts) + 2 entries, initially zero).  Colors above cnt + 1
 * cannot affect the mex and are skipped. */
void segmented_mex_i64(int64_t *out, const int64_t *colors,
                       const int64_t *indices, const int64_t *starts,
                       const int64_t *counts, int64_t nseg,
                       int64_t *stamp) {
    for (int64_t s = 0; s < nseg; ++s) {
        int64_t lo = starts[s];
        int64_t cnt = counts[s];
        int64_t tag = s + 1;
        for (int64_t k = 0; k < cnt; ++k) {
            int64_t c = colors[indices[lo + k]];
            if (c > 0 && c <= cnt + 1) stamp[c] = tag;
        }
        int64_t m = 1;
        while (stamp[m] == tag) ++m;
        out[s] = m;
    }
}

/* Speculative conflict resolution: emit the lower-priority endpoint of
 * every same-positive-color arc with an active source, in arc order. */
int64_t conflict_losers_i64(int64_t *out, const int64_t *src,
                            const int64_t *dst, const int64_t *colors,
                            const int64_t *prio, const uint8_t *active,
                            int64_t m) {
    int64_t k = 0;
    for (int64_t e = 0; e < m; ++e) {
        int64_t s = src[e];
        if (!active[s]) continue;
        int64_t c = colors[s];
        if (c <= 0 || c != colors[dst[e]]) continue;
        int64_t d = dst[e];
        out[k++] = prio[s] < prio[d] ? s : d;
    }
    return k;
}
"""

_OP_NAMES = {
    "maximum": "max",
    "minimum": "min",
    "add": "add",
    "multiply": "mul",
}

_DTYPE_SUFFIX = {
    np.dtype(np.int64): "i64",
    np.dtype(np.float64): "f64",
}

_C_TYPES = {"i64": ctypes.c_int64, "f64": ctypes.c_double}


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_BACKEND_CACHE", "")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "backend"


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Tuple[Optional[ctypes.CDLL], str]:
    """Compile (or reuse) the kernel library; returns (lib, reason)."""
    compiler = _find_compiler()
    if compiler is None:
        return None, "no C compiler (cc/gcc/clang) on PATH"
    digest = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"repro_kernels_{digest}.so"
    if not so_path.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=str(cache)) as tmp:
                c_path = Path(tmp) / "kernels.c"
                c_path.write_text(C_SOURCE)
                tmp_so = Path(tmp) / "kernels.so"
                proc = subprocess.run(
                    [compiler, "-O3", "-shared", "-fPIC",
                     "-o", str(tmp_so), str(c_path)],
                    capture_output=True,
                    text=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    tail = (proc.stderr or "").strip().splitlines()[-1:]
                    return None, f"compile failed: {' '.join(tail) or 'unknown'}"
                # Atomic publish: rename within the cache directory.
                os.replace(str(tmp_so), str(so_path))
        except (OSError, subprocess.SubprocessError) as exc:
            return None, f"compile failed: {exc}"
    try:
        return ctypes.CDLL(str(so_path)), ""
    except OSError as exc:
        return None, f"load failed: {exc}"


def _ptr(arr: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(arr.ctypes.data)


def _contig(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr)


class CNativeBackend(Backend):
    """Compiled-C execution of the fused hot kernels."""

    name = "cnative"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib

    # -- dispatch helpers --------------------------------------------------

    def _kernel(self, family: str, op: OpLike, dtype: np.dtype):
        """The C symbol for (family, op, dtype), or None to fall back."""
        opname = _OP_NAMES.get(resolve_op(op).__name__)
        suffix = _DTYPE_SUFFIX.get(np.dtype(dtype))
        if opname is None or suffix is None:
            return None
        return getattr(self._lib, f"{family}_{opname}_{suffix}")

    # -- primitives --------------------------------------------------------

    def scatter_reduce(self, out, idx, vals, op) -> None:
        vals = np.asarray(vals)
        fn = self._kernel("scatter", op, out.dtype)
        if (
            fn is None
            or not out.flags.c_contiguous
            or vals.dtype != out.dtype
            or vals.shape != idx.shape
            or idx.dtype != np.int64
        ):
            self.fallback.scatter_reduce(out, idx, vals, op)
            return
        fn(_ptr(out), _ptr(_contig(idx)), _ptr(_contig(vals)),
           ctypes.c_int64(len(idx)))

    def scatter_hit(self, out, hit, idx, vals, op) -> None:
        vals = np.asarray(vals)
        fn = self._kernel("scatter_hit", op, out.dtype)
        if (
            fn is None
            or not out.flags.c_contiguous
            or not hit.flags.c_contiguous
            or hit.dtype != np.bool_
            or vals.dtype != out.dtype
            or vals.shape != idx.shape
            or idx.dtype != np.int64
        ):
            self.fallback.scatter_hit(out, hit, idx, vals, op)
            return
        fn(_ptr(out), _ptr(hit.view(np.uint8)), _ptr(_contig(idx)),
           _ptr(_contig(vals)), ctypes.c_int64(len(idx)))

    def segmented_reduce(self, values, starts, op) -> np.ndarray:
        values = np.asarray(values)
        starts = np.asarray(starts)
        fn = self._kernel("segreduce", op, values.dtype)
        nseg = len(starts)
        # reduceat uses pairwise summation for float add/mul; a
        # sequential loop would drift in the last bits, so only the
        # order-exact cases run compiled.
        ordered = values.dtype == np.int64 or resolve_op(op).__name__ in (
            "maximum",
            "minimum",
        )
        if (
            fn is None
            or not ordered
            or starts.dtype != np.int64
            or nseg == 0
            or len(values) == 0
            or int(starts.min()) < 0
            or int(starts.max()) >= len(values)
        ):
            return self.fallback.segmented_reduce(values, starts, op)
        out = np.empty(nseg, dtype=values.dtype)
        fn(_ptr(out), _ptr(_contig(values)), _ptr(_contig(starts)),
           ctypes.c_int64(nseg), ctypes.c_int64(len(values)))
        return out

    def segmented_mex(self, colors, indices, starts, counts) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        nseg = len(starts)
        if nseg == 0:
            return np.empty(0, dtype=np.int64)
        if colors.dtype != np.int64 or indices.dtype != np.int64:
            return self.fallback.segmented_mex(colors, indices, starts, counts)
        out = np.empty(nseg, dtype=np.int64)
        stamp = np.zeros(int(counts.max(initial=0)) + 2, dtype=np.int64)
        self._lib.segmented_mex_i64(
            _ptr(out), _ptr(_contig(colors)), _ptr(_contig(indices)),
            _ptr(_contig(starts)), _ptr(_contig(counts)),
            ctypes.c_int64(nseg), _ptr(stamp),
        )
        return out

    def active_max(self, offsets, indices, keys, active) -> np.ndarray:
        n = len(offsets) - 1
        if (
            offsets.dtype != np.int64
            or indices.dtype != np.int64
            or keys.dtype != np.int64
            or active.dtype != np.bool_
        ):
            return self.fallback.active_max(offsets, indices, keys, active)
        out = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        self._lib.active_max_i64(
            _ptr(out), _ptr(_contig(offsets)), _ptr(_contig(indices)),
            _ptr(_contig(keys)), _ptr(_contig(active).view(np.uint8)),
            ctypes.c_int64(n),
        )
        return out

    def active_extrema(self, offsets, indices, keys, active):
        n = len(offsets) - 1
        if (
            offsets.dtype != np.int64
            or indices.dtype != np.int64
            or keys.dtype != np.int64
            or active.dtype != np.bool_
        ):
            return self.fallback.active_extrema(offsets, indices, keys, active)
        nmax = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        nmin = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        self._lib.active_extrema_i64(
            _ptr(nmax), _ptr(nmin), _ptr(_contig(offsets)),
            _ptr(_contig(indices)), _ptr(_contig(keys)),
            _ptr(_contig(active).view(np.uint8)), ctypes.c_int64(n),
        )
        return nmax, nmin

    def conflict_losers(self, src, dst, colors, prio, active) -> np.ndarray:
        m = len(src)
        if (
            src.dtype != np.int64
            or dst.dtype != np.int64
            or colors.dtype != np.int64
            or prio.dtype != np.int64
            or active.dtype != np.bool_
        ):
            return self.fallback.conflict_losers(src, dst, colors, prio, active)
        out = np.empty(m, dtype=np.int64)
        fn = self._lib.conflict_losers_i64
        fn.restype = ctypes.c_int64
        k = fn(
            _ptr(out), _ptr(_contig(src)), _ptr(_contig(dst)),
            _ptr(_contig(colors)), _ptr(_contig(prio)),
            _ptr(_contig(active).view(np.uint8)), ctypes.c_int64(m),
        )
        return out[:k].copy()


def load() -> Tuple[Optional[Backend], str]:
    """Build and wrap the compiled backend; (None, reason) on failure."""
    lib, reason = _build_library()
    if lib is None:
        return None, reason
    return CNativeBackend(lib), ""
