"""The optional numba JIT backend.

Mirrors the fused C kernels of :mod:`repro.backend.cnative` as
``@njit`` loops — same single-pass structure, same exact int64
arithmetic and in-index-order float accumulation, hence the same bits
as the reference backend.  numba is *not* a dependency of this package:
:func:`load` reports ``(None, reason)`` when the import fails and the
selection layer falls back to reference with a one-time warning.

Kernels compile lazily on first call (numba's usual behaviour), so
merely selecting the backend is cheap.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import Backend, OpLike, resolve_op

__all__ = ["load", "NumbaBackend"]

#: Opcode encoding shared by the generic scatter/segmented kernels.
_OPCODES = {"maximum": 0, "minimum": 1, "add": 2, "multiply": 3}


def _build_kernels(njit):
    """Compile-on-demand kernel set (created once per process)."""

    @njit(cache=False)
    def scatter(out, idx, vals, opcode):
        for k in range(idx.shape[0]):
            i = idx[k]
            v = vals[k]
            o = out[i]
            if opcode == 0:  # maximum, numpy NaN semantics
                if v != v:
                    out[i] = v
                elif o == o and v > o:
                    out[i] = v
            elif opcode == 1:  # minimum
                if v != v:
                    out[i] = v
                elif o == o and v < o:
                    out[i] = v
            elif opcode == 2:
                out[i] = o + v
            else:
                out[i] = o * v

    @njit(cache=False)
    def scatter_hit(out, hit, idx, vals, opcode):
        for k in range(idx.shape[0]):
            i = idx[k]
            v = vals[k]
            o = out[i]
            if opcode == 0:
                if v != v:
                    out[i] = v
                elif o == o and v > o:
                    out[i] = v
            elif opcode == 1:
                if v != v:
                    out[i] = v
                elif o == o and v < o:
                    out[i] = v
            elif opcode == 2:
                out[i] = o + v
            else:
                out[i] = o * v
            hit[i] = True

    @njit(cache=False)
    def segmented_reduce(out, vals, starts, opcode):
        nseg = starts.shape[0]
        nvals = vals.shape[0]
        for s in range(nseg):
            lo = starts[s]
            hi = starts[s + 1] if s + 1 < nseg else nvals
            acc = vals[lo]
            for k in range(lo + 1, hi):
                v = vals[k]
                if opcode == 0:
                    if v != v:
                        acc = v
                    elif acc == acc and v > acc:
                        acc = v
                elif opcode == 1:
                    if v != v:
                        acc = v
                    elif acc == acc and v < acc:
                        acc = v
                elif opcode == 2:
                    acc = acc + v
                else:
                    acc = acc * v
            out[s] = acc

    @njit(cache=False)
    def segmented_mex(out, colors, indices, starts, counts, stamp):
        for s in range(starts.shape[0]):
            lo = starts[s]
            cnt = counts[s]
            tag = s + 1
            for k in range(cnt):
                c = colors[indices[lo + k]]
                if c > 0 and c <= cnt + 1:
                    stamp[c] = tag
            m = 1
            while stamp[m] == tag:
                m += 1
            out[s] = m

    @njit(cache=False)
    def active_max(out, offsets, indices, keys, active):
        for v in range(offsets.shape[0] - 1):
            if not active[v]:
                continue
            kv = keys[v]
            for e in range(offsets[v], offsets[v + 1]):
                d = indices[e]
                if kv > out[d]:
                    out[d] = kv

    @njit(cache=False)
    def active_extrema(nmax, nmin, offsets, indices, keys, active):
        for v in range(offsets.shape[0] - 1):
            if not active[v]:
                continue
            kv = keys[v]
            for e in range(offsets[v], offsets[v + 1]):
                d = indices[e]
                if kv > nmax[d]:
                    nmax[d] = kv
                if kv < nmin[d]:
                    nmin[d] = kv

    @njit(cache=False)
    def conflict_losers(out, src, dst, colors, prio, active):
        k = 0
        for e in range(src.shape[0]):
            s = src[e]
            if not active[s]:
                continue
            c = colors[s]
            d = dst[e]
            if c <= 0 or c != colors[d]:
                continue
            out[k] = s if prio[s] < prio[d] else d
            k += 1
        return k

    return {
        "scatter": scatter,
        "scatter_hit": scatter_hit,
        "segmented_reduce": segmented_reduce,
        "segmented_mex": segmented_mex,
        "active_max": active_max,
        "active_extrema": active_extrema,
        "conflict_losers": conflict_losers,
    }


class NumbaBackend(Backend):
    """JIT execution of the fused hot kernels via numba."""

    name = "numba"

    def __init__(self, njit) -> None:
        self._k = _build_kernels(njit)

    def _opcode(self, op: OpLike) -> Optional[int]:
        return _OPCODES.get(resolve_op(op).__name__)

    @staticmethod
    def _supported(*arrays: np.ndarray) -> bool:
        ok = (np.dtype(np.int64), np.dtype(np.float64), np.dtype(np.bool_))
        return all(a.dtype in ok and a.flags.c_contiguous for a in arrays)

    def scatter_reduce(self, out, idx, vals, op) -> None:
        vals = np.asarray(vals)
        opcode = self._opcode(op)
        if (
            opcode is None
            or vals.shape != idx.shape
            or vals.dtype != out.dtype
            or idx.dtype != np.int64
            or not self._supported(out, idx, vals)
        ):
            self.fallback.scatter_reduce(out, idx, vals, op)
            return
        self._k["scatter"](out, idx, vals, opcode)

    def scatter_hit(self, out, hit, idx, vals, op) -> None:
        vals = np.asarray(vals)
        opcode = self._opcode(op)
        if (
            opcode is None
            or vals.shape != idx.shape
            or vals.dtype != out.dtype
            or idx.dtype != np.int64
            or hit.dtype != np.bool_
            or not self._supported(out, hit, idx, vals)
        ):
            self.fallback.scatter_hit(out, hit, idx, vals, op)
            return
        self._k["scatter_hit"](out, hit, idx, vals, opcode)

    def segmented_reduce(self, values, starts, op) -> np.ndarray:
        values = np.asarray(values)
        starts = np.asarray(starts)
        opcode = self._opcode(op)
        nseg = len(starts)
        # reduceat uses pairwise summation for float add/mul; only the
        # order-exact cases run jitted (see cnative.segmented_reduce).
        ordered = values.dtype == np.int64 or opcode in (0, 1)
        if (
            opcode is None
            or not ordered
            or starts.dtype != np.int64
            or nseg == 0
            or len(values) == 0
            or int(starts.min()) < 0
            or int(starts.max()) >= len(values)
            or not self._supported(values, starts)
        ):
            return self.fallback.segmented_reduce(values, starts, op)
        out = np.empty(nseg, dtype=values.dtype)
        self._k["segmented_reduce"](out, values, starts, opcode)
        return out

    def segmented_mex(self, colors, indices, starts, counts) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        nseg = len(starts)
        if nseg == 0:
            return np.empty(0, dtype=np.int64)
        if colors.dtype != np.int64 or indices.dtype != np.int64 or (
            not self._supported(colors, indices, starts, counts)
        ):
            return self.fallback.segmented_mex(colors, indices, starts, counts)
        out = np.empty(nseg, dtype=np.int64)
        stamp = np.zeros(int(counts.max(initial=0)) + 2, dtype=np.int64)
        self._k["segmented_mex"](out, colors, indices, starts, counts, stamp)
        return out

    def active_max(self, offsets, indices, keys, active) -> np.ndarray:
        if (
            offsets.dtype != np.int64
            or indices.dtype != np.int64
            or keys.dtype != np.int64
            or active.dtype != np.bool_
            or not self._supported(offsets, indices, keys, active)
        ):
            return self.fallback.active_max(offsets, indices, keys, active)
        out = np.full(len(offsets) - 1, np.iinfo(np.int64).min, dtype=np.int64)
        self._k["active_max"](out, offsets, indices, keys, active)
        return out

    def active_extrema(self, offsets, indices, keys, active):
        if (
            offsets.dtype != np.int64
            or indices.dtype != np.int64
            or keys.dtype != np.int64
            or active.dtype != np.bool_
            or not self._supported(offsets, indices, keys, active)
        ):
            return self.fallback.active_extrema(offsets, indices, keys, active)
        n = len(offsets) - 1
        nmax = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        nmin = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        self._k["active_extrema"](nmax, nmin, offsets, indices, keys, active)
        return nmax, nmin

    def conflict_losers(self, src, dst, colors, prio, active) -> np.ndarray:
        if (
            src.dtype != np.int64
            or dst.dtype != np.int64
            or colors.dtype != np.int64
            or prio.dtype != np.int64
            or active.dtype != np.bool_
            or not self._supported(src, dst, colors, prio, active)
        ):
            return self.fallback.conflict_losers(src, dst, colors, prio, active)
        out = np.empty(len(src), dtype=np.int64)
        k = self._k["conflict_losers"](out, src, dst, colors, prio, active)
        return out[: int(k)].copy()


def load() -> Tuple[Optional[Backend], str]:
    """Import numba and wrap the JIT backend; (None, reason) if absent."""
    try:
        from numba import njit
    except ImportError as exc:
        return None, f"numba is not installed ({exc})"
    return NumbaBackend(njit), ""
