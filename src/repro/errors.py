"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems refine it:
graph construction errors, GraphBLAS dimension/type errors, Gunrock
operator misuse, and cost-model configuration errors each get their own
subclass mirroring the layering described in DESIGN.md.

All :class:`ReproError` subclasses are **pickle-safe**: instances
survive a pickling round trip with their original type, message, and
attributes even when a subclass defines an ``__init__`` whose signature
differs from ``Exception.args`` (the standard-library pitfall that
turns a worker's exception into a ``TypeError`` at the process
boundary).  The parallel grid runner relies on this to propagate
worker failures verbatim.
"""

from __future__ import annotations


def _restore_error(cls, args, state):
    """Rebuild a pickled :class:`ReproError` without calling the
    subclass ``__init__`` (whose signature may not match ``args``)."""
    err = cls.__new__(cls)
    Exception.__init__(err, *args)
    if state:
        err.__dict__.update(state)
    return err


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""

    def __reduce__(self):
        return (_restore_error, (type(self), self.args, self.__dict__))


class GraphError(ReproError):
    """Invalid graph construction or use (bad CSR arrays, bad vertex ids)."""


class GraphFormatError(GraphError):
    """A graph file (MatrixMarket / edge list / npz) could not be parsed."""


class GeneratorError(GraphError):
    """A synthetic-graph generator was given inconsistent parameters."""


class GraphBLASError(ReproError):
    """Base class for GraphBLAS API violations."""


class DimensionMismatch(GraphBLASError):
    """Operands of a GraphBLAS operation have incompatible shapes."""


class DomainMismatch(GraphBLASError):
    """Operands of a GraphBLAS operation have incompatible dtypes."""


class InvalidValue(GraphBLASError):
    """A GraphBLAS argument is out of its legal range (e.g. bad index)."""


class UninitializedObject(GraphBLASError):
    """A GraphBLAS object was used after :meth:`free` or before init."""


class GunrockError(ReproError):
    """Misuse of the data-centric (Gunrock-style) operator API."""


class FrontierError(GunrockError):
    """A frontier was used with the wrong kind (vertex vs edge) or state."""


class SimulationError(ReproError):
    """Cost-model / device-spec configuration problems."""


class RaceError(SimulationError):
    """The superstep race sanitizer detected an intra-kernel data race.

    Raised (only when ``REPRO_SANITIZE=1``) when two distinct logical
    GPU threads write the same array element in one kernel launch, or
    one thread writes an element another thread reads, without the
    kernel declaring the access atomic or a reduction.  Carries
    ``kernel``, ``array``, ``superstep`` and ``index`` attributes for
    diagnostics.
    """

    def __init__(
        self,
        message: str,
        *,
        kernel: str = "",
        array: str = "",
        superstep: int = -1,
        index: int = -1,
    ) -> None:
        super().__init__(message)
        self.kernel = kernel
        self.array = array
        self.superstep = superstep
        self.index = index


class ColoringError(ReproError):
    """A coloring algorithm was invoked with unusable inputs."""


class ValidationError(ColoringError):
    """A produced coloring failed validation (used by strict-mode runs)."""


class DatasetError(ReproError):
    """Unknown dataset name or unsatisfiable dataset scaling request."""


class HarnessError(ReproError):
    """Experiment-harness configuration problems (unknown experiment id)."""


class RepetitionTimeout(HarnessError):
    """A single repetition exceeded its wall-clock budget.

    Treated as transient by the grid runner (the repetition is retried
    up to the retry bound — a loaded machine can stall an otherwise
    fine repetition), then recorded as a failed cell.
    """


class FaultError(HarnessError):
    """An error deliberately injected by :mod:`repro.harness.faults`."""


class TransientFaultError(FaultError):
    """An injected fault modelling a *transient* failure.

    The grid runner's retry policy treats this class (together with
    worker crashes and timeouts) as retryable; all other exceptions are
    considered deterministic and fail the repetition immediately.
    """


class WorkerKillFault(TransientFaultError):
    """An injected fault modelling a killed service worker.

    The ``serve``-scoped analogue of the grid runner's SIGKILL fault:
    inside the long-lived service a real SIGKILL would take the whole
    process (and every queued request) down, so the injection instead
    models the observable effect — the executing worker dies mid-flight
    and the request must be retried by a fresh worker.  Transient by
    definition.
    """


class JournalError(HarnessError):
    """The checkpoint journal could not be read or written."""


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""


class DeadlineExceeded(ServeError):
    """A service request ran out of its per-request deadline budget.

    Raised cooperatively: compute threads check the request's cancel
    flag before starting a kernel, and the event loop stops waiting the
    moment the budget expires.  The request is answered with a
    ``timeout`` response — never left hanging.
    """
