"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems refine it:
graph construction errors, GraphBLAS dimension/type errors, Gunrock
operator misuse, and cost-model configuration errors each get their own
subclass mirroring the layering described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """Invalid graph construction or use (bad CSR arrays, bad vertex ids)."""


class GraphFormatError(GraphError):
    """A graph file (MatrixMarket / edge list / npz) could not be parsed."""


class GeneratorError(GraphError):
    """A synthetic-graph generator was given inconsistent parameters."""


class GraphBLASError(ReproError):
    """Base class for GraphBLAS API violations."""


class DimensionMismatch(GraphBLASError):
    """Operands of a GraphBLAS operation have incompatible shapes."""


class DomainMismatch(GraphBLASError):
    """Operands of a GraphBLAS operation have incompatible dtypes."""


class InvalidValue(GraphBLASError):
    """A GraphBLAS argument is out of its legal range (e.g. bad index)."""


class UninitializedObject(GraphBLASError):
    """A GraphBLAS object was used after :meth:`free` or before init."""


class GunrockError(ReproError):
    """Misuse of the data-centric (Gunrock-style) operator API."""


class FrontierError(GunrockError):
    """A frontier was used with the wrong kind (vertex vs edge) or state."""


class SimulationError(ReproError):
    """Cost-model / device-spec configuration problems."""


class ColoringError(ReproError):
    """A coloring algorithm was invoked with unusable inputs."""


class ValidationError(ColoringError):
    """A produced coloring failed validation (used by strict-mode runs)."""


class DatasetError(ReproError):
    """Unknown dataset name or unsatisfiable dataset scaling request."""


class HarnessError(ReproError):
    """Experiment-harness configuration problems (unknown experiment id)."""
