"""Command-line entry point for the repro static analysis suite.

Usage::

    python -m repro.analysis lint [PATH ...] [--format=text|json]
    python -m repro.analysis lint --list-rules

With no paths the installed ``repro`` package itself is linted.

Exit codes: 0 — clean; 1 — violations found; 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .lint import RULES, lint_paths

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static analysis for the graph-coloring reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser(
        "lint", help="check determinism / simulation-invariant rules"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command != "lint":  # pragma: no cover — argparse enforces this
        return EXIT_USAGE

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}")
        return EXIT_CLEAN

    paths = args.paths or [Path(__file__).resolve().parents[1]]
    try:
        violations = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        print(
            json.dumps(
                {
                    "violations": [v.to_dict() for v in violations],
                    "count": len(violations),
                },
                indent=2,
            )
        )
    else:
        for v in violations:
            print(v.render())
        if violations:
            print(f"{len(violations)} violation(s)", file=sys.stderr)
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
