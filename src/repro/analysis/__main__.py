"""Command-line entry point for the repro static analysis suite.

Usage::

    python -m repro.analysis lint [PATH ...] [--format=text|json|sarif]
    python -m repro.analysis lint --baseline FILE [--write-baseline]
    python -m repro.analysis lint --list-rules
    python -m repro.analysis certify [PATH ...] [--output FILE]

With no paths the installed ``repro`` package itself is analyzed.

``lint`` runs the full suite: the single-file rules (RPL0xx), the
interprocedural nondeterminism-taint rules (RPL1xx), and the
async/concurrency rules (RPL2xx).  ``--baseline`` subtracts a committed
baseline (see :mod:`repro.analysis.baseline`); ``--write-baseline``
regenerates it from the current findings instead of gating.

``certify`` runs the static kernel access analyzer and writes the race
certificates the runtime sanitizer consumes (see
:mod:`repro.analysis.rules.kernels`).

Exit codes: 0 — clean; 4 — violations found (matching
``python -m repro.harness lint``); 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from .engine import analyze_paths
from .lint import RULES
from .rules import rule_meta

EXIT_CLEAN = 0
#: Matches repro.harness.__main__.EXIT_LINT so every lint surface
#: reports debt with one number.
EXIT_VIOLATIONS = 4
EXIT_USAGE = 2


def _default_cert_path() -> Path:
    cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    return Path(cache_dir) / "race-certs.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static analysis for the graph-coloring reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser(
        "lint", help="check determinism / simulation-invariant rules"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the committed baseline before gating",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the --baseline file from the current findings",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    certify = sub.add_parser(
        "certify",
        help="statically classify gpusim kernels and write race certificates",
    )
    certify.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    certify.add_argument(
        "--output",
        metavar="FILE",
        help="certificate path (default: $REPRO_CACHE_DIR/race-certs.json)",
    )
    return parser


def _cmd_lint(args) -> int:
    if args.list_rules:
        for rule_id in sorted(RULES):
            meta = rule_meta(rule_id)
            print(
                f"{rule_id}  [{meta.category}/{meta.severity}]  {meta.summary}"
            )
        return EXIT_CLEAN

    paths = args.paths or [Path(__file__).resolve().parents[1]]

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline", file=sys.stderr)
            return EXIT_USAGE
        from .baseline import write_baseline

        report = analyze_paths(paths)
        n = write_baseline(report.violations, args.baseline)
        print(
            f"baseline: wrote {n} entr{'y' if n == 1 else 'ies'} "
            f"({len(report.violations)} finding(s)) to {args.baseline}"
        )
        return EXIT_CLEAN

    baseline = None
    if args.baseline:
        from .baseline import load_baseline

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE

    try:
        report = analyze_paths(paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    violations = report.violations
    if args.format == "json":
        payload = {
            "violations": [v.to_dict() for v in violations],
            "count": len(violations),
        }
        if baseline is not None:
            payload["absorbed"] = len(report.absorbed)
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        from .sarif import to_sarif

        print(json.dumps(to_sarif(violations), indent=2))
    else:
        for v in violations:
            print(v.render())
        if violations:
            print(f"{len(violations)} violation(s)", file=sys.stderr)
        if report.absorbed:
            print(
                f"{len(report.absorbed)} baseline-absorbed finding(s)",
                file=sys.stderr,
            )
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def _cmd_certify(args) -> int:
    from .rules.kernels import certify_tree, write_certificates

    paths = args.paths or [Path(__file__).resolve().parents[1]]
    try:
        payload = certify_tree(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    out = Path(args.output) if args.output else _default_cert_path()
    write_certificates(payload, out)
    kernels = payload["kernels"]
    by_verdict: dict = {}
    for entry in kernels.values():
        by_verdict[entry["verdict"]] = by_verdict.get(entry["verdict"], 0) + 1
    summary = ", ".join(
        f"{count} {verdict}" for verdict, count in sorted(by_verdict.items())
    )
    print(
        f"certified {len(kernels)} kernel name(s) -> {out}"
        + (f" ({summary})" if summary else "")
    )
    for name in sorted(kernels):
        print(f"  {name}: {kernels[name]['verdict']}")
    return EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "certify":
        return _cmd_certify(args)
    return EXIT_USAGE  # pragma: no cover — argparse enforces this


if __name__ == "__main__":
    sys.exit(main())
