"""Forward dataflow / taint framework over the project call graph.

The RPL1xx rules need to answer a question the single-file lint
structurally cannot: *does a value born nondeterministic ever reach a
simulated quantity?* — where birth and death may be several function
calls apart.  This module provides the generic machinery:

* a per-function forward taint walker (environment of
  ``name -> {taint tokens}``, strong updates on plain assignments,
  loop bodies iterated to a small fixpoint);
* function **summaries** — which taints a function returns, which of
  its parameters flow to its return, and which parameters flow into a
  sink inside it — computed to fixpoint over the whole project so taint
  crosses call boundaries in both directions;
* a pluggable :class:`TaintPolicy` that defines what counts as a
  *source* (taint origin), a *sink*, and which calls sanitize the
  ordering-based taints (``sorted`` et al.).

Taint tokens are either an **origin** string (``"wall-clock"``,
``"rng"``, ``"set-order"``, ``"id-hash"``, ``"env"``) or a **param**
token ``("param", i)`` used while computing summaries.  Implicit flows
(taint through branch conditions) are deliberately not tracked — they
would flag virtually everything downstream of ``sanitize_enabled()``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, ModuleInfo, Project, dotted_name

__all__ = [
    "ORIGINS",
    "TaintPolicy",
    "TaintFinding",
    "Summary",
    "TaintAnalysis",
]

#: The taint origins the determinism rules recognize.
ORIGINS = ("wall-clock", "rng", "set-order", "id-hash", "env")

#: Upper bound on whole-project summary iterations; deep call chains
#: converge in `depth` passes, and real code is shallow.
_MAX_PROJECT_PASSES = 6
#: Per-function statement-walk repetitions (loop-carried taint).
_FN_PASSES = 2

Token = object  # str origin | ("param", int)


def _is_origin(token: Token) -> bool:
    return isinstance(token, str)


@dataclass(frozen=True)
class Summary:
    """What a function does with taint, as seen from a call site."""

    returns: FrozenSet[str] = frozenset()
    param_returns: FrozenSet[int] = frozenset()
    #: ``(param index, sink kind)`` — the param flows into a sink inside.
    param_sinks: FrozenSet[Tuple[int, str]] = frozenset()
    #: Return value is a set (its iteration order is unstable).
    returns_set: bool = False


@dataclass(frozen=True)
class TaintFinding:
    """One origin reaching one sink."""

    module_key: str
    line: int
    col: int
    origin: str
    sink: str
    #: Callee carrying the flow when it crossed a call boundary.
    via: Optional[str] = None


class TaintPolicy:
    """Hook points a rule family implements.  The defaults are inert so
    subclasses only override what they use."""

    #: Call leaves that erase ``"set-order"`` taint (canonicalizers).
    ORDER_SANITIZERS: FrozenSet[str] = frozenset(
        {"sorted", "len", "min", "max", "sum", "set", "frozenset", "sort", "unique"}
    )
    #: Dict-literal keys that make the dict a sim-visible payload.
    PAYLOAD_KEYS: FrozenSet[str] = frozenset()

    def call_origins(
        self, call: ast.Call, module: ModuleInfo
    ) -> Set[str]:  # pragma: no cover - interface
        """Origins a call expression gives birth to."""
        return set()

    def subscript_origins(
        self, node: ast.Subscript, module: ModuleInfo
    ) -> Set[str]:  # pragma: no cover - interface
        """Origins a subscript *read* gives birth to (``os.environ[…]``)."""
        return set()

    def assign_sink(self, target: ast.AST, module: ModuleInfo) -> Optional[str]:
        """Sink kind for a store target, or None."""
        return None

    def call_sinks(
        self, call: ast.Call, module: ModuleInfo
    ) -> List[Tuple[ast.AST, str]]:
        """``(argument expression, sink kind)`` pairs for a call."""
        return []


class _FunctionTaint:
    """One forward walk of one function body."""

    def __init__(
        self,
        analysis: "TaintAnalysis",
        fn: FunctionInfo,
    ) -> None:
        self.analysis = analysis
        self.policy = analysis.policy
        self.project = analysis.project
        self.fn = fn
        self.module = fn.module
        self.env: Dict[str, Set[Token]] = {}
        self.settyped: Set[str] = set()
        self.ret_tokens: Set[Token] = set()
        self.returns_set = False
        self.param_sink_hits: Set[Tuple[int, str]] = set()
        self.params = fn.params
        for i, name in enumerate(self.params):
            self.env[name] = {("param", i)}

    # -- driving ------------------------------------------------------------

    def run(self) -> Summary:
        body = getattr(self.fn.node, "body", [])
        for _ in range(_FN_PASSES):
            self._walk_body(body)
        returns = frozenset(t for t in self.ret_tokens if _is_origin(t))
        param_returns = frozenset(
            t[1] for t in self.ret_tokens if not _is_origin(t)
        )
        return Summary(
            returns=returns,
            param_returns=param_returns,
            param_sinks=frozenset(self.param_sink_hits),
            returns_set=self.returns_set,
        )

    # -- statements ---------------------------------------------------------

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            tokens, is_set = self._eval(stmt.value)
            for target in stmt.targets:
                self._store(target, tokens, is_set, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                tokens, is_set = self._eval(stmt.value)
                self._store(stmt.target, tokens, is_set, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            tokens, _ = self._eval(stmt.value)
            tokens = set(tokens) | self._load_target(stmt.target)
            self._store(stmt.target, tokens, False, stmt, augment=True)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                tokens, is_set = self._eval(stmt.value)
                self.ret_tokens |= tokens
                self.returns_set = self.returns_set or is_set
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            tokens, is_set = self._eval(stmt.iter)
            if is_set:
                tokens = set(tokens) | {"set-order"}
            self._bind_loop_target(stmt.target, tokens)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            # Both arms walked over one environment: the result is the
            # union over-approximation, which is what we want.
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tokens, is_set = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._store(item.optional_vars, tokens, is_set, stmt)
            self._walk_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        # Everything else (imports, pass, global, raise, assert, del):
        # evaluate child expressions for their side effects on findings.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child)

    # -- stores and sinks ---------------------------------------------------

    def _store(
        self,
        target: ast.AST,
        tokens: Set[Token],
        is_set: bool,
        stmt: ast.stmt,
        *,
        augment: bool = False,
    ) -> None:
        sink = self.policy.assign_sink(target, self.module)
        if sink is not None:
            self._report(tokens, sink, stmt)
        if isinstance(target, ast.Name):
            if augment:
                self.env[target.id] = self.env.get(target.id, set()) | tokens
            else:
                self.env[target.id] = set(tokens)
                if is_set:
                    self.settyped.add(target.id)
                else:
                    self.settyped.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, tokens, False, stmt, augment=augment)
        elif isinstance(target, ast.Starred):
            self._store(target.value, tokens, False, stmt, augment=augment)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            key = f"{target.value.id}.{target.attr}"
            self.env[key] = self.env.get(key, set()) | tokens
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, set()) | tokens

    def _load_target(self, target: ast.AST) -> Set[Token]:
        if isinstance(target, ast.Name):
            return set(self.env.get(target.id, set()))
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            return set(self.env.get(f"{target.value.id}.{target.attr}", set()))
        return set()

    def _bind_loop_target(self, target: ast.AST, tokens: Set[Token]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(tokens)
            self.settyped.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_loop_target(elt, tokens)

    def _report(
        self,
        tokens: Set[Token],
        sink: str,
        node: ast.AST,
        *,
        via: Optional[str] = None,
    ) -> None:
        for token in sorted(t for t in tokens if _is_origin(t)):
            self.analysis.findings.add(
                TaintFinding(
                    module_key=self.module.key,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    origin=token,
                    sink=sink,
                    via=via,
                )
            )
        for token in tokens:
            if not _is_origin(token):
                self.param_sink_hits.add((token[1], sink))

    # -- expressions --------------------------------------------------------

    def _eval(self, node: ast.AST) -> Tuple[Set[Token], bool]:
        """Taint tokens and set-typedness of an expression."""
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, set())), node.id in self.settyped
        if isinstance(node, ast.Constant):
            return set(), False
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                key = f"{node.value.id}.{node.attr}"
                if key in self.env:
                    return set(self.env[key]), False
            tokens, _ = self._eval(node.value)
            return tokens, False
        if isinstance(node, ast.Subscript):
            tokens, _ = self._eval(node.value)
            extra = self.policy.subscript_origins(node, self.module)
            idx_tokens, _ = self._eval(node.slice)
            return tokens | extra | idx_tokens, False
        if isinstance(node, (ast.BinOp,)):
            lt, _ = self._eval(node.left)
            rt, _ = self._eval(node.right)
            return lt | rt, False
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Token] = set()
            for v in node.values:
                t, _ = self._eval(v)
                out |= t
            return out, False
        if isinstance(node, ast.Compare):
            out, _ = self._eval(node.left)
            for comp in node.comparators:
                t, _ = self._eval(comp)
                out |= t
            return out, False
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            bt, bs = self._eval(node.body)
            ot, os_ = self._eval(node.orelse)
            return bt | ot, bs or os_
        if isinstance(node, (ast.List, ast.Tuple)):
            out = set()
            for elt in node.elts:
                t, _ = self._eval(elt)
                out |= t
            return out, False
        if isinstance(node, ast.Set):
            out = set()
            for elt in node.elts:
                t, _ = self._eval(elt)
                out |= t
            return out, True
        if isinstance(node, ast.Dict):
            out = set()
            payload_hits: List[Tuple[ast.AST, Set[Token]]] = []
            for key, value in zip(node.keys, node.values):
                vt, _ = self._eval(value)
                out |= vt
                if (
                    key is not None
                    and isinstance(key, ast.Constant)
                    and key.value in self.policy.PAYLOAD_KEYS
                    and vt
                ):
                    payload_hits.append((value, vt))
            for value, vt in payload_hits:
                self._report(vt, "payload", value)
            return out, False
        if isinstance(node, ast.SetComp):
            tokens = self._eval_comprehension(node.generators, node.elt)
            return tokens, True
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node.generators, node.elt), False
        if isinstance(node, ast.DictComp):
            tokens = self._eval_comprehension(node.generators, node.value)
            return tokens, False
        if isinstance(node, ast.JoinedStr):
            out = set()
            for v in node.values:
                t, _ = self._eval(v)
                out |= t
            return out, False
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                return self._eval(node.value)
            return set(), False
        if isinstance(node, ast.NamedExpr):
            tokens, is_set = self._eval(node.value)
            self._store(node.target, tokens, is_set, node)
            return tokens, is_set
        if isinstance(node, ast.Lambda):
            return set(), False
        # Fallback: union over child expressions.
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                t, _ = self._eval(child)
                out |= t
        return out, False

    def _eval_comprehension(self, generators, elt) -> Set[Token]:
        out: Set[Token] = set()
        for gen in generators:
            t, is_set = self._eval(gen.iter)
            out |= t
            if is_set:
                out.add("set-order")
            self._bind_loop_target(gen.target, set(out))
            for cond in gen.ifs:
                t, _ = self._eval(cond)
                out |= t
        t, _ = self._eval(elt)
        return out | t

    def _eval_call(self, call: ast.Call) -> Tuple[Set[Token], bool]:
        arg_tokens: List[Set[Token]] = []
        any_set = False
        for arg in call.args:
            t, is_set = self._eval(arg)
            arg_tokens.append(t)
            any_set = any_set or is_set
        kw_tokens: Dict[str, Set[Token]] = {}
        for kw in call.keywords:
            t, _ = self._eval(kw.value)
            kw_tokens[kw.arg or "**"] = t

        tokens: Set[Token] = set()
        # 1. Is the call itself a source?
        tokens |= self.policy.call_origins(call, self.module)

        leaf = self._call_leaf(call)

        # 2. Explicit sinks on arguments (charge_*, result payloads, …).
        for arg_node, sink in self.policy.call_sinks(call, self.module):
            t, _ = self._eval(arg_node)
            if t:
                self._report(t, sink, arg_node)

        # 3. Resolved callee: flow through its summary.
        callee = self.project.resolve_call(
            self.module, call, enclosing_class=self.fn.enclosing_class
        )
        if callee is not None:
            summary = self.analysis.summaries.get(callee.key(), Summary())
            tokens |= set(summary.returns)
            mapped = self._map_args(callee, call, arg_tokens, kw_tokens)
            for i in summary.param_returns:
                tokens |= mapped.get(i, set())
            for i, sink in sorted(summary.param_sinks):
                t = mapped.get(i, set())
                if t:
                    self._report(t, sink, call, via=callee.qualname)
            return tokens, summary.returns_set

        # 4. Unresolved call: propagate argument taint conservatively.
        for t in arg_tokens:
            tokens |= t
        for t in kw_tokens.values():
            tokens |= t
        if leaf in self.policy.ORDER_SANITIZERS:
            tokens = {t for t in tokens if t != "set-order"}
        elif any_set and leaf in ("list", "tuple", "iter", "enumerate", "pop", "next"):
            tokens = tokens | {"set-order"}
        elif leaf == "pop" and self._receiver_settyped(call):
            tokens = tokens | {"set-order"}
        is_set = leaf in ("set", "frozenset")
        return tokens, is_set

    def _receiver_settyped(self, call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.settyped
        )

    @staticmethod
    def _call_leaf(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _map_args(
        self,
        callee: FunctionInfo,
        call: ast.Call,
        arg_tokens: List[Set[Token]],
        kw_tokens: Dict[str, Set[Token]],
    ) -> Dict[int, Set[Token]]:
        """Map call-site argument taints onto callee parameter indices."""
        mapped: Dict[int, Set[Token]] = {}
        params = callee.params
        for i, t in enumerate(arg_tokens):
            if i < len(params):
                mapped[i] = t
        for name, t in kw_tokens.items():
            if name in params:
                mapped[params.index(name)] = t
        return mapped


class TaintAnalysis:
    """Project-wide taint fixpoint."""

    def __init__(self, project: Project, policy: TaintPolicy) -> None:
        self.project = project
        self.policy = policy
        self.summaries: Dict[Tuple[str, str], Summary] = {}
        self.findings: Set[TaintFinding] = set()

    def run(self) -> List[TaintFinding]:
        functions: List[FunctionInfo] = []
        for mod in self.project.sorted_modules():
            for qual in sorted(mod.functions):
                functions.append(mod.functions[qual])
        for fn in functions:
            self.summaries[fn.key()] = Summary()
        for _ in range(_MAX_PROJECT_PASSES):
            # Findings accumulate only on the final stable pass so call
            # sites report against converged summaries.
            self.findings.clear()
            changed = False
            for fn in functions:
                summary = _FunctionTaint(self, fn).run()
                if summary != self.summaries[fn.key()]:
                    self.summaries[fn.key()] = summary
                    changed = True
            if not changed:
                break
        return sorted(
            self.findings,
            key=lambda f: (f.module_key, f.line, f.col, f.origin, f.sink),
        )
