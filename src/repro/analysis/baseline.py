"""Committed-baseline mechanism for widening the lint gate.

Turning new rules (or new directories) on over an existing tree means
pre-existing findings.  Rather than weakening the rules or littering
the tree with suppressions, CI commits a *baseline*: a multiset of
known findings keyed by ``(file, rule, message)``.  The gate then fails
only on findings **not** absorbed by the baseline — new debt fails CI,
old debt is visible (the file is in review) but not blocking.

Line numbers are deliberately not part of the key: unrelated edits
shift lines constantly, and a baseline that churns on every edit gets
rubber-stamped.  The multiset count still caps each entry, so *adding*
a second identical finding in the same file is caught.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

__all__ = [
    "BASELINE_VERSION",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1

Key = Tuple[str, str, str]


def baseline_key(violation) -> Key:
    return (
        str(violation.file).replace("\\", "/"),
        violation.rule,
        violation.message,
    )


def load_baseline(path) -> Counter:
    """Read a baseline file into a Counter of keys."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or "entries" not in raw:
        raise ValueError(f"{path}: not a repro-lint baseline file")
    counts: Counter = Counter()
    for entry in raw["entries"]:
        counts[(entry["file"], entry["rule"], entry["message"])] += int(
            entry.get("count", 1)
        )
    return counts


def write_baseline(violations: Iterable, path) -> int:
    """Write the baseline absorbing every given violation; returns the
    number of distinct entries."""
    counts = Counter(baseline_key(v) for v in violations)
    entries = [
        {"file": f, "rule": r, "message": m, "count": c}
        for (f, r, m), c in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def apply_baseline(violations: Iterable, baseline: Counter):
    """Split violations into ``(kept, absorbed)`` against the baseline.

    Each baseline entry absorbs up to ``count`` matching findings;
    extras beyond the recorded count are kept (they are *new* debt).
    """
    budget = Counter(baseline)
    kept: List = []
    absorbed: List = []
    for v in violations:
        key = baseline_key(v)
        if budget[key] > 0:
            budget[key] -= 1
            absorbed.append(v)
        else:
            kept.append(v)
    return kept, absorbed
