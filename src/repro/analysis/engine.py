"""Analysis engine: single-file lint + interprocedural passes, one report.

:func:`analyze_paths` is the one entry point every surface (the
``python -m repro.analysis`` CLI, ``python -m repro.harness lint``,
tests) goes through.  It

1. discovers ``.py`` files under the given paths (skipping
   ``lint_fixtures`` trees unless a given root explicitly points into
   one — the fixtures are *deliberate* violations);
2. runs the single-file pass (:func:`repro.analysis.lint.raw_lint_source`);
3. builds the project view and runs the interprocedural rule families
   (RPL1xx nondeterminism taint, RPL2xx async/concurrency);
4. applies same-line suppressions **once, centrally**, so one comment
   waives file-local and interprocedural findings alike, and emits
   RPL000/RPL011 suppression hygiene;
5. optionally subtracts a committed baseline
   (:mod:`repro.analysis.baseline`).

The report is deterministic: same file set → byte-identical output,
independent of argument order or filesystem enumeration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .callgraph import load_project
from .lint import (
    Violation,
    apply_suppressions,
    collect_suppressions,
    raw_lint_source,
)
from .rules.concurrency import run_concurrency_rules
from .rules.determinism import run_determinism_rules

__all__ = ["AnalysisReport", "analyze_paths", "discover_files"]

#: Directory name whose contents are deliberate rule violations.
_FIXTURE_DIR = "lint_fixtures"


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    #: Findings that gate (post-suppression, post-baseline).
    violations: List[Violation] = field(default_factory=list)
    #: Findings matched and absorbed by the baseline.
    absorbed: List[Violation] = field(default_factory=list)
    #: Posix paths of every file analyzed.
    files: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "warning"]


def discover_files(paths: Sequence) -> List[Path]:
    """Every ``.py`` file under ``paths``, deduplicated and sorted.

    Directory traversal skips ``lint_fixtures`` components; passing a
    path *inside* a fixture tree analyzes it anyway (tests do).
    """
    seen: Dict[str, Path] = {}
    for raw in paths:
        root = Path(raw)
        explicit_fixture = _FIXTURE_DIR in root.parts
        if root.is_dir():
            for p in sorted(root.rglob("*.py")):
                if not explicit_fixture and _FIXTURE_DIR in p.parts:
                    continue
                seen.setdefault(p.as_posix(), p)
        elif root.is_file():
            seen.setdefault(root.as_posix(), root)
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
    return [seen[k] for k in sorted(seen)]


def analyze_paths(
    paths: Sequence,
    *,
    baseline=None,
    interprocedural: bool = True,
) -> AnalysisReport:
    """Run the full analysis over ``paths``.

    ``baseline`` is a Counter from
    :func:`repro.analysis.baseline.load_baseline`; matching findings
    move to ``report.absorbed`` instead of gating.
    """
    files = discover_files(paths)

    sources: Dict[str, str] = {}
    for p in files:
        try:
            sources[p.as_posix()] = p.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            sources[p.as_posix()] = ""

    # Project-wide passes (parse failures simply drop out of the
    # project; the per-file pass reports their RPL999).
    project_findings: Dict[str, List[Tuple[int, int, str, str]]] = {}
    if interprocedural:
        project = load_project(files)
        for key, line, col, rule, message in run_determinism_rules(
            project
        ) + run_concurrency_rules(project):
            project_findings.setdefault(key, []).append(
                (line, col, rule, message)
            )

    all_violations: List[Violation] = []
    for p in files:
        key = p.as_posix()
        source = sources[key]
        raw = raw_lint_source(source, p)
        if any(v.rule == "RPL999" for v in raw):
            all_violations.extend(raw)
            continue
        for line, col, rule, message in project_findings.get(key, []):
            raw.append(
                Violation(
                    file=key, line=line, col=col, rule=rule, message=message
                )
            )
        all_violations.extend(
            apply_suppressions(raw, collect_suppressions(source), p)
        )

    all_violations.sort(key=lambda v: (v.file, v.line, v.col, v.rule))

    report = AnalysisReport(files=[p.as_posix() for p in files])
    if baseline:
        kept, absorbed = _apply(all_violations, baseline)
        report.violations, report.absorbed = kept, absorbed
    else:
        report.violations = all_violations
    return report


def _apply(violations, baseline):
    from .baseline import apply_baseline

    return apply_baseline(violations, baseline)
