"""Static analysis for the reproduction: the repro-lint rule engine.

``python -m repro.analysis lint [paths]`` checks the determinism and
simulation invariants documented in :mod:`repro.analysis.lint` (single
file rules RPL0xx), the interprocedural nondeterminism-taint rules
(RPL1xx, :mod:`repro.analysis.rules.determinism`), and the
async/concurrency rules (RPL2xx,
:mod:`repro.analysis.rules.concurrency`).  ``python -m repro.analysis
certify`` runs the static kernel access analyzer
(:mod:`repro.analysis.rules.kernels`) and emits the race certificates
the runtime sanitizer consumes.  See ``docs/static-analysis.md`` for
the full catalogue.
"""

from .engine import AnalysisReport, analyze_paths
from .lint import RULES, Violation, lint_file, lint_paths, lint_source
from .rules import CATALOG, RuleMeta, all_rule_ids, rule_meta

__all__ = [
    "RULES",
    "CATALOG",
    "RuleMeta",
    "AnalysisReport",
    "Violation",
    "all_rule_ids",
    "analyze_paths",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_meta",
]
