"""Static analysis for the reproduction: the repro-lint rule engine.

``python -m repro.analysis lint [paths]`` checks the determinism and
simulation invariants documented in :mod:`repro.analysis.lint` (rules
RPL000–RPL006).  See ``docs/static-analysis.md`` for the catalogue.
"""

from .lint import RULES, Violation, lint_file, lint_paths, lint_source

__all__ = ["RULES", "Violation", "lint_file", "lint_paths", "lint_source"]
