"""RPL2xx: async/concurrency rules for the serving and harness layers.

The event loop in ``repro.serve`` owns deadlines, admission, and
degradation; the harness owns process pools.  Both die quietly when
sync and async worlds are mixed carelessly, so these rules are scoped
to files with a ``serve`` or ``harness`` path component:

==========  ==========================================================
RPL200      A blocking call inside ``async def``: ``time.sleep``,
            synchronous file I/O (``open``, ``Path.read_text`` and
            friends), ``subprocess.*``, or a direct ``run_algorithm``
            — each stalls the whole event loop for its duration.
            Route the work through ``run_in_executor`` (or use
            ``asyncio.sleep``).
RPL201      ``await`` while holding a *synchronous* lock
            (``threading.Lock``/``RLock``/…, or any ``with`` on a
            lock-named object): the coroutine parks with the lock
            held, and any other task — or the executor thread the
            lock exists to coordinate with — deadlocks against it.
            ``async with asyncio.Lock()`` is the sanctioned form and
            is not matched.
RPL202      Module-level mutable state mutated both from a coroutine
            and from a function handed to ``run_in_executor`` /
            ``asyncio.to_thread``: the executor side runs on a worker
            thread, so the mutation is a data race invisible to the
            event loop's cooperative scheduling.
==========  ==========================================================
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..callgraph import ModuleInfo, Project, dotted_name

__all__ = ["CONCURRENCY_DIRS", "run_concurrency_rules"]

#: Path components that opt a file into the RPL2xx rules.
CONCURRENCY_DIRS = frozenset({"serve", "harness"})

_BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
    }
)
_BLOCKING_LEAVES = frozenset(
    {"run_algorithm", "read_text", "write_text", "read_bytes", "write_bytes"}
)
_LOCK_FACTORY_LEAVES = frozenset(
    {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}
)
_EXECUTOR_SPAWNS = {"run_in_executor": 1, "to_thread": 0}


def _in_scope(path: PurePath) -> bool:
    return any(part in CONCURRENCY_DIRS for part in path.parts[:-1])


def _direct_children_skipping_defs(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _is_lockish(expr: ast.AST) -> bool:
    """A ``with`` context that reads as a synchronous lock."""
    if isinstance(expr, ast.Call):
        dotted = dotted_name(expr.func) or ""
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf in _LOCK_FACTORY_LEAVES:
            return True
        expr = expr.func
    dotted = dotted_name(expr)
    if dotted is None:
        return False
    leaf = dotted.rsplit(".", 1)[-1]
    return "lock" in leaf.lower()


def _blocking_call(call: ast.Call, module: ModuleInfo) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head, _, _rest = dotted.partition(".")
    target = module.from_imports.get(head)
    if target is not None:
        resolved = ".".join(p for p in target if p)
        dotted = dotted.replace(head, resolved, 1)
    if dotted in _BLOCKING_DOTTED:
        return dotted
    leaf = dotted.rsplit(".", 1)[-1]
    if leaf in _BLOCKING_LEAVES:
        return leaf
    if dotted == "open":
        return "open"
    # ``from time import sleep`` / aliased imports.
    if leaf == "sleep" and dotted in ("sleep", "time.sleep"):
        return "time.sleep"
    return None


def _mutated_names(fn_node: ast.AST, shared: Set[str]) -> Dict[str, ast.AST]:
    """Shared names this function mutates (store/augstore/mutator call),
    mapped to the first mutation site."""
    out: Dict[str, ast.AST] = {}

    def base_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    declared_global: Set[str] = set()
    for node in _direct_children_skipping_defs(fn_node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in _direct_children_skipping_defs(fn_node):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "append",
                "add",
                "update",
                "setdefault",
                "pop",
                "clear",
                "extend",
                "remove",
                "discard",
            ):
                targets = [func.value]
        for t in targets:
            name = base_name(t)
            if name is None:
                continue
            # A plain ``x = …`` rebinai local unless declared global;
            # subscript/attribute stores mutate the shared object.
            plain_rebind = isinstance(t, ast.Name)
            if name in shared and (not plain_rebind or name in declared_global):
                out.setdefault(name, node)
    return out


def _executor_targets(module: ModuleInfo) -> Set[str]:
    """Function names handed to run_in_executor/to_thread in this module."""
    out: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        arg_index = _EXECUTOR_SPAWNS.get(func.attr)
        if arg_index is None or len(node.args) <= arg_index:
            continue
        fn_arg = node.args[arg_index]
        if isinstance(fn_arg, ast.Name):
            out.add(fn_arg.id)
        elif isinstance(fn_arg, ast.Attribute):
            out.add(fn_arg.attr)
    return out


def run_concurrency_rules(project: Project):
    """Yield ``(module_key, line, col, rule, message)`` tuples."""
    findings: List[Tuple[str, int, int, str, str]] = []
    for module in project.sorted_modules():
        if not _in_scope(module.path):
            continue
        _check_module(module, findings)
    findings.sort()
    return findings


def _check_module(module: ModuleInfo, findings: List) -> None:
    shared = set(module.top_level_names())
    executor_fns = _executor_targets(module)
    async_mutations: Dict[str, Tuple[str, ast.AST]] = {}
    executor_mutations: List[Tuple[str, str, ast.AST]] = []

    for qual in sorted(module.functions):
        fn = module.functions[qual]
        plain_name = qual.rsplit(".", 1)[-1]
        if fn.is_async:
            _check_async_body(module, fn, findings)
            for name, site in _mutated_names(fn.node, shared).items():
                async_mutations.setdefault(name, (qual, site))
        elif plain_name in executor_fns or qual in executor_fns:
            for name, site in _mutated_names(fn.node, shared).items():
                executor_mutations.append((name, qual, site))

    for name, qual, site in executor_mutations:
        hit = async_mutations.get(name)
        if hit is None:
            continue
        async_qual, _async_site = hit
        findings.append(
            (
                module.key,
                getattr(site, "lineno", 1),
                getattr(site, "col_offset", 0),
                "RPL202",
                f"module-level {name!r} is mutated here in executor-run "
                f"{qual}() and also from coroutine {async_qual}(); the "
                "executor side runs on a worker thread, so this is a data "
                "race — marshal the update back onto the event loop or "
                "guard both sides with one lock",
            )
        )


def _check_async_body(module: ModuleInfo, fn, findings: List) -> None:
    node = fn.node
    for child in _direct_children_skipping_defs(node):
        if isinstance(child, ast.Call):
            blocked = _blocking_call(child, module)
            if blocked is not None:
                findings.append(
                    (
                        module.key,
                        child.lineno,
                        child.col_offset,
                        "RPL200",
                        f"blocking call {blocked}() inside async "
                        f"{fn.qualname}() stalls the event loop for every "
                        "in-flight request; hand it to run_in_executor "
                        "(or asyncio.sleep for delays)",
                    )
                )
        elif isinstance(child, ast.With):
            lock_items = [
                item for item in child.items if _is_lockish(item.context_expr)
            ]
            if not lock_items:
                continue
            for inner in _direct_children_skipping_defs(child):
                if isinstance(inner, ast.Await):
                    findings.append(
                        (
                            module.key,
                            inner.lineno,
                            inner.col_offset,
                            "RPL201",
                            "await while holding a synchronous lock in "
                            f"{fn.qualname}(): the coroutine parks with "
                            "the lock held and other tasks or executor "
                            "threads deadlock against it; release before "
                            "awaiting or use asyncio.Lock with async with",
                        )
                    )
                    break
