"""Rule catalogue metadata for the repro static-analysis suite.

Every rule the engine can emit is registered here with a category and
a severity, so every reporting surface (text, JSON, SARIF, docs) draws
from one source of truth.  This module is deliberately dependency-free:
:mod:`repro.analysis.lint` imports it, and the rule-family modules in
this package import :mod:`repro.analysis.lint` — keeping the metadata
standalone breaks the cycle.

Rule-id bands
-------------

========  ====================================================
RPL0xx    Single-file syntactic rules (the original lint pass).
RPL1xx    Interprocedural nondeterminism-taint rules.
RPL2xx    Async/concurrency rules (``serve/``, ``harness/``).
RPL999    File does not parse.
========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["RuleMeta", "CATALOG", "rule_meta", "all_rule_ids"]

#: Where the human-readable catalogue lives (used as the SARIF helpUri).
DOCS_URI = "https://example.invalid/repro/docs/static-analysis.md"


@dataclass(frozen=True)
class RuleMeta:
    """Identity card for one rule."""

    id: str
    summary: str
    #: Coarse family used by reports and the SARIF ``properties`` bag.
    category: str
    #: ``"error"`` violations gate CI; ``"warning"`` findings inform.
    severity: str = "error"


def _r(rule_id: str, summary: str, category: str, severity: str = "error") -> RuleMeta:
    return RuleMeta(id=rule_id, summary=summary, category=category, severity=severity)


CATALOG: Dict[str, RuleMeta] = {
    m.id: m
    for m in (
        # -- RPL0xx: the original single-file pass ---------------------------
        _r("RPL000", "suppression comment is malformed or lacks a justification", "suppression-hygiene"),
        _r("RPL001", "global/unseeded randomness outside repro._rng", "determinism"),
        _r("RPL002", "wall-clock read inside simulation code (use the cost model)", "simulation"),
        _r("RPL003", "hand-rolled sim_ms arithmetic bypassing CostModel", "simulation"),
        _r("RPL004", "silent int64->int32 narrowing in CSR/frontier code", "correctness"),
        _r("RPL005", "bare except:", "error-hygiene"),
        _r("RPL006", "swallowed exception (except Exception: pass)", "error-hygiene"),
        _r("RPL007", "manual TraceSpan construction outside repro.trace", "observability"),
        _r("RPL008", "ad-hoc module-level metric state outside repro.metrics", "observability"),
        _r("RPL009", "direct numpy kernel call in a hot path; use repro.backend", "performance"),
        _r("RPL010", "unbounded asyncio queue or fire-and-forget task in serve code", "concurrency"),
        _r("RPL011", "unused suppression: no violation on the line matches it", "suppression-hygiene", "warning"),
        # -- RPL1xx: interprocedural nondeterminism taint --------------------
        _r("RPL100", "wall-clock-derived value flows into a sim-visible sink", "determinism"),
        _r("RPL101", "unseeded-randomness-derived value flows into a sim-visible sink", "determinism"),
        _r("RPL102", "set-iteration-order-dependent value flows into a sim-visible sink", "determinism"),
        _r("RPL103", "id()/hash-ordering-dependent value flows into a sim-visible sink", "determinism"),
        _r("RPL104", "environment-lookup value flows into a sim-visible sink", "determinism"),
        # -- RPL2xx: async/concurrency --------------------------------------
        _r("RPL200", "blocking call inside async def (serve/harness)", "concurrency"),
        _r("RPL201", "await while holding a synchronous lock", "concurrency"),
        _r("RPL202", "shared mutable state touched from coroutine and executor contexts", "concurrency"),
        # -- parse ----------------------------------------------------------
        _r("RPL999", "file does not parse", "parse"),
    )
}


def rule_meta(rule_id: str) -> RuleMeta:
    """Metadata for ``rule_id``; unknown ids get a generic error card."""
    try:
        return CATALOG[rule_id]
    except KeyError:
        return RuleMeta(id=rule_id, summary="unknown rule", category="unknown")


def all_rule_ids():
    """Every registered rule id, sorted."""
    return sorted(CATALOG)
