"""Static kernel access analyzer: race certificates for gpusim kernels.

The runtime :class:`~repro.gpusim.sanitizer.SuperstepSanitizer` replays
every instrumented kernel launch's access sets and checks them for
write–write and read–write races.  Most of our kernels cannot race *by
construction* — every plain write is to the thread's own slot — so the
runtime check is pure overhead for them.  This module proves that
statically, from the instrumentation calls themselves, and emits a
certificate file the sanitizer consults to skip recording for proven
kernels.

Verdicts (per kernel *site*, then folded per kernel *name*):

``race-free``
    Every plain write is **own-slot** (the ``idx`` expression is
    syntactically identical to the ``lane`` expression, so element
    ``e`` is only ever written by lane ``e`` — duplicates collapse to
    one lane), or anonymous over a **provably-unique** index
    (``np.arange`` / ``np.flatnonzero`` / ``np.unique``) on an array
    that is never read in the scope; and every read of a plainly
    written array is itself own-slot.  No declared writes.

``atomic-or-reduction``
    As above, except at least one write carries ``atomic=True`` or
    ``reduction=True`` — the declaration is the safety argument, and
    the runtime exempts declared writes anyway.

``needs-runtime-check``
    Anything the prover cannot discharge: dynamic kernel or array
    names (f-strings — e.g. the gunrock operators and the injected
    fault kernels), mixed plain+declared writes to one array,
    cross-lane plain writes.  These keep full runtime checking.

A kernel name is certified only when **every** site bearing that name
agrees; the certificate embeds a sha256 of each contributing source
file (relative to the ``repro`` package root) so a stale certificate
is detected and ignored at load time rather than silently trusted.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..callgraph import ModuleInfo, Project, dotted_name, load_project

__all__ = [
    "CERT_VERSION",
    "RACE_FREE",
    "DECLARED",
    "RUNTIME",
    "KernelSite",
    "find_kernel_sites",
    "classify_site",
    "build_certificates",
    "write_certificates",
    "certify_tree",
]

CERT_VERSION = 1

RACE_FREE = "race-free"
DECLARED = "atomic-or-reduction"
RUNTIME = "needs-runtime-check"

_VERDICT_RANK = {RACE_FREE: 0, DECLARED: 1, RUNTIME: 2}

_UNIQUE_INDEX_LEAVES = frozenset({"arange", "flatnonzero", "unique"})


@dataclass(frozen=True)
class KernelAccess:
    """One ``k.read`` / ``k.write`` call inside a kernel scope."""

    kind: str  # "read" | "write"
    array: Optional[str]  # constant array name, None when dynamic
    idx: ast.AST
    lane: Optional[ast.AST]
    atomic: bool
    reduction: bool
    line: int

    @property
    def declared(self) -> bool:
        return self.atomic or self.reduction

    @property
    def own_slot(self) -> bool:
        """``idx`` and ``lane`` are the same expression, syntactically."""
        if self.lane is None:
            return False
        return ast.dump(self.idx) == ast.dump(self.lane)


@dataclass
class KernelSite:
    """One ``with san.kernel(...) as k:`` block."""

    module_key: str
    line: int
    name: Optional[str]  # constant kernel name, None when dynamic
    accesses: List[KernelAccess] = field(default_factory=list)
    #: True when the scope contains accesses the parser couldn't model
    #: (starred args, non-keyword lanes, aliased scope variable, ...).
    opaque: bool = False

    @property
    def dynamic_name(self) -> bool:
        return self.name is None


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _AssignIndex:
    """Single-assignment resolution inside one function (or module) body.

    ``lanes = np.arange(n); k.write("keys", lanes, ...)`` — resolving
    ``lanes`` to the ``np.arange`` call lets the uniqueness prover see
    through the local variable.  Names assigned more than once resolve
    to nothing (conservative).
    """

    def __init__(self, scope: ast.AST) -> None:
        self._values: Dict[str, Optional[ast.AST]] = {}
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    if t.id in self._values:
                        self._values[t.id] = None  # reassigned: unknown
                    else:
                        self._values[t.id] = node.value

    def resolve(self, node: ast.AST) -> ast.AST:
        if isinstance(node, ast.Name):
            value = self._values.get(node.id)
            if value is not None:
                return value
        return node


def _provably_unique(node: ast.AST, assigns: _AssignIndex) -> bool:
    """Index expressions whose elements are pairwise distinct."""
    node = assigns.resolve(node)
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None:
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf in _UNIQUE_INDEX_LEAVES:
                return True
    return False


class _SiteFinder(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.sites: List[KernelSite] = []
        self._scope_stack: List[ast.AST] = [module.tree]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope_stack.append(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and isinstance(ctx.func, ast.Attribute)
                and ctx.func.attr == "kernel"
                and ctx.args
                and isinstance(item.optional_vars, ast.Name)
            ):
                self.sites.append(
                    self._parse_site(node, ctx, item.optional_vars.id)
                )
        self.generic_visit(node)

    def _parse_site(
        self, node: ast.With, ctx: ast.Call, scope_var: str
    ) -> KernelSite:
        site = KernelSite(
            module_key=self.module.key,
            line=node.lineno,
            name=_const_str(ctx.args[0]),
        )
        for inner in ast.walk(node):
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                site.opaque = True  # a nested def could smuggle accesses
                continue
            if not isinstance(inner, ast.Call):
                continue
            func = inner.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == scope_var
                and func.attr in ("read", "write")
            ):
                continue
            access = self._parse_access(func.attr, inner)
            if access is None:
                site.opaque = True
            else:
                site.accesses.append(access)
        return site

    def _parse_access(self, kind: str, call: ast.Call) -> Optional[KernelAccess]:
        if len(call.args) != 2 or any(
            isinstance(a, ast.Starred) for a in call.args
        ):
            return None
        lane: Optional[ast.AST] = None
        atomic = reduction = False
        for kw in call.keywords:
            if kw.arg == "lane":
                if not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is None
                ):
                    lane = kw.value
            elif kw.arg == "atomic":
                if not isinstance(kw.value, ast.Constant):
                    return None
                atomic = bool(kw.value.value)
            elif kw.arg == "reduction":
                if not isinstance(kw.value, ast.Constant):
                    return None
                reduction = bool(kw.value.value)
            else:
                return None  # **kwargs or unknown keyword: can't model
        return KernelAccess(
            kind=kind,
            array=_const_str(call.args[0]),
            idx=call.args[1],
            lane=lane,
            atomic=atomic,
            reduction=reduction,
            line=call.lineno,
        )


def find_kernel_sites(project: Project) -> List[KernelSite]:
    """Every ``with <x>.kernel(...) as k`` block in the project."""
    sites: List[KernelSite] = []
    for module in project.sorted_modules():
        finder = _SiteFinder(module)
        finder.visit(module.tree)
        sites.extend(finder.sites)
    sites.sort(key=lambda s: (s.module_key, s.line))
    return sites


def classify_site(site: KernelSite, module: ModuleInfo) -> str:
    """Static verdict for one kernel scope."""
    if site.dynamic_name or site.opaque:
        return RUNTIME

    assigns = _AssignIndex(_enclosing_scope(module, site.line))

    reads: Dict[str, List[KernelAccess]] = {}
    writes: Dict[str, List[KernelAccess]] = {}
    for acc in site.accesses:
        if acc.array is None:
            return RUNTIME
        (reads if acc.kind == "read" else writes).setdefault(
            acc.array, []
        ).append(acc)

    declared_any = False
    for array, ws in writes.items():
        plain = [w for w in ws if not w.declared]
        decl = [w for w in ws if w.declared]
        if decl:
            declared_any = True
        if plain and decl:
            # One array, two safety regimes: the runtime must arbitrate.
            return RUNTIME
        for w in plain:
            if w.own_slot:
                continue
            if (
                w.lane is None
                and _provably_unique(w.idx, assigns)
                and array not in reads
            ):
                # Anonymous lanes over pairwise-distinct indices: each
                # element gets exactly one (fresh) writer lane, and no
                # read can observe it from another lane.
                continue
            return RUNTIME
        if plain:
            # Own-slot writes pin element e to lane e; a read is safe
            # only if it is own-slot too (reader lane == element).
            for r in reads.get(array, []):
                if not r.own_slot:
                    return RUNTIME
    return DECLARED if declared_any else RACE_FREE


def _enclosing_scope(module: ModuleInfo, line: int) -> ast.AST:
    """The innermost function containing ``line``, else the module."""
    best: ast.AST = module.tree
    best_span = float("inf")
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", None)
            if end is None:
                continue
            if node.lineno <= line <= end and (end - node.lineno) < best_span:
                best, best_span = node, end - node.lineno
    return best


def _package_relative(module_key: str) -> Optional[str]:
    """Path relative to the ``repro`` package root, or None."""
    parts = Path(module_key).parts
    anchors = [i for i, p in enumerate(parts) if p == "repro"]
    if not anchors:
        return None
    rel = parts[anchors[-1] + 1 :]
    return "/".join(rel) if rel else None


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def build_certificates(project: Project) -> Dict:
    """Fold per-site verdicts into the certificate payload.

    Only constant-named kernels appear; a name's verdict is the weakest
    verdict among its sites, and ``needs-runtime-check`` names are kept
    in the payload for the report but never skipped by the runtime.
    """
    per_name: Dict[str, Dict] = {}
    files_used: Dict[str, str] = {}  # package-relative -> module_key
    for site in find_kernel_sites(project):
        if site.name is None:
            continue
        module = project.modules[site.module_key]
        verdict = classify_site(site, module)
        rel = _package_relative(site.module_key)
        entry = per_name.setdefault(
            site.name, {"verdict": verdict, "sites": []}
        )
        if _VERDICT_RANK[verdict] > _VERDICT_RANK[entry["verdict"]]:
            entry["verdict"] = verdict
        entry["sites"].append([rel or site.module_key, site.line])
        if rel is not None:
            files_used[rel] = site.module_key

    file_hashes = {
        rel: _sha256(Path(project.modules[key].path))
        for rel, key in sorted(files_used.items())
    }
    return {
        "version": CERT_VERSION,
        "generated_by": "repro.analysis",
        "files": file_hashes,
        "kernels": {
            name: {
                "verdict": entry["verdict"],
                "sites": sorted(entry["sites"]),
            }
            for name, entry in sorted(per_name.items())
        },
    }


def write_certificates(payload: Dict, path) -> None:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def certify_tree(paths: Sequence) -> Dict:
    """Convenience: parse ``paths`` and build the certificate payload."""
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return build_certificates(load_project(files))
