"""RPL1xx: interprocedural nondeterminism-taint rules.

The reproduction's headline invariant — simulated quantities are
bit-exact across reruns, ``jobs>1``, resume, tracing, and backends —
dies the moment a nondeterministic value leaks into one of them.  The
single-file rules (RPL001/RPL002) ban the *call sites*; these rules
track the *values* through assignments, arithmetic, containers, and
function calls, and fire only where a tainted value actually reaches a
sim-visible sink:

==========  ==========================================================
RPL100      wall-clock origin (``time.perf_counter()``, …)
RPL101      unseeded randomness (``np.random.*`` draws, stdlib
            ``random``, ``os.urandom``, ``uuid.uuid4``, ``secrets``,
            argument-less ``default_rng()``)
RPL102      ``set`` iteration order (iterating/materializing a set
            without ``sorted()``)
RPL103      ``id()`` / ``hash()`` ordering (CPython address- and
            PYTHONHASHSEED-dependent)
RPL104      environment lookups (``os.environ[…]``, ``os.getenv``)
==========  ==========================================================

Sim-visible sinks: stores to ``sim_ms`` / ``colors`` / ``coloring`` /
``counters``, arguments of cost-model ``charge_*`` calls,
``ColoringResult(...)`` result fields, and journal/bench payload dicts
keyed by those names.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..callgraph import ModuleInfo, Project, dotted_name
from ..dataflow import TaintAnalysis, TaintFinding, TaintPolicy

__all__ = ["ORIGIN_RULES", "DeterminismPolicy", "run_determinism_rules"]

#: origin tag -> rule id
ORIGIN_RULES: Dict[str, str] = {
    "wall-clock": "RPL100",
    "rng": "RPL101",
    "set-order": "RPL102",
    "id-hash": "RPL103",
    "env": "RPL104",
}

_ORIGIN_LABEL = {
    "wall-clock": "wall-clock",
    "rng": "unseeded-randomness",
    "set-order": "set-iteration-order",
    "id-hash": "id()/hash()-ordering",
    "env": "environment-lookup",
}

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
    }
)

# np.random members that are type references, not stream draws (kept in
# sync with the RPL001 list in repro.analysis.lint).
_RNG_TYPES = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_RNG_CALLS = frozenset(
    {"os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.token_bytes",
     "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
     "secrets.choice", "secrets.randbits"}
)

_ENV_CALLS = frozenset({"os.getenv", "os.environ.get", "environ.get"})

_RESULT_FIELD_SINKS = frozenset(
    {"sim_ms", "colors", "coloring", "counters", "iterations"}
)


def _resolved_dotted(node: ast.AST, module: ModuleInfo) -> Optional[str]:
    """Dotted call-target name with ``from``-import aliases expanded."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = module.from_imports.get(head)
    if target is not None:
        origin = ".".join(p for p in target if p)
        return f"{origin}.{rest}" if rest else origin
    alias = module.imports.get(head)
    if alias is not None and alias != head:
        return f"{alias}.{rest}" if rest else alias
    return dotted


class DeterminismPolicy(TaintPolicy):
    """Sources and sinks for the RPL1xx family."""

    PAYLOAD_KEYS = frozenset(_RESULT_FIELD_SINKS)

    # -- sources ------------------------------------------------------------

    def call_origins(self, call: ast.Call, module: ModuleInfo) -> Set[str]:
        dotted = _resolved_dotted(call.func, module)
        out: Set[str] = set()
        if dotted is None:
            return out
        leaf = dotted.rsplit(".", 1)[-1]
        if dotted in _WALL_CLOCK:
            out.add("wall-clock")
        if dotted in _RNG_CALLS:
            out.add("rng")
        if (
            dotted.startswith(("np.random.", "numpy.random.", "random."))
            and leaf not in _RNG_TYPES
            and leaf != "default_rng"
        ):
            out.add("rng")
        if leaf == "default_rng" and not call.args and not call.keywords:
            out.add("rng")  # argument-less: seeded from the OS
        if dotted in ("id", "hash"):
            out.add("id-hash")
        if leaf in ("sorted", "sort"):
            for kw in call.keywords:
                if (
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in ("id", "hash")
                ):
                    out.add("id-hash")
        if dotted in _ENV_CALLS or dotted.endswith(".environ.get"):
            out.add("env")
        return out

    def subscript_origins(
        self, node: ast.Subscript, module: ModuleInfo
    ) -> Set[str]:
        dotted = dotted_name(node.value)
        if dotted in ("os.environ", "environ"):
            return {"env"}
        return set()

    # -- sinks --------------------------------------------------------------

    def assign_sink(self, target: ast.AST, module: ModuleInfo) -> Optional[str]:
        if isinstance(target, ast.Name):
            if target.id == "sim_ms":
                return "sim_ms"
            if target.id in ("colors", "coloring"):
                return "coloring"
            return None
        if isinstance(target, ast.Attribute):
            if target.attr == "sim_ms":
                return "sim_ms"
            if target.attr in ("colors", "coloring"):
                return "coloring"
            return None
        if isinstance(target, ast.Subscript):
            base = target.value
            name = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name in ("colors", "coloring"):
                return "coloring"
            if name == "counters":
                return "counters"
        return None

    def call_sinks(
        self, call: ast.Call, module: ModuleInfo
    ) -> List[Tuple[ast.AST, str]]:
        out: List[Tuple[ast.AST, str]] = []
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr.startswith("charge_"):
            for arg in call.args:
                out.append((arg, "cost-charge"))
            for kw in call.keywords:
                # ``name=`` is the kernel label, not a charged quantity.
                if kw.arg not in ("name", None):
                    out.append((kw.value, "cost-charge"))
        leaf = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if leaf == "ColoringResult":
            for kw in call.keywords:
                if kw.arg in _RESULT_FIELD_SINKS:
                    out.append((kw.value, kw.arg))
        return out


def run_determinism_rules(project: Project):
    """Run the taint fixpoint; yields ``(module_key, line, col, rule,
    message)`` tuples sorted deterministically."""
    findings = TaintAnalysis(project, DeterminismPolicy()).run()
    out = []
    for f in findings:
        rule = ORIGIN_RULES[f.origin]
        label = _ORIGIN_LABEL[f.origin]
        via = f" (flows through {f.via}())" if f.via else ""
        message = (
            f"{label}-derived value flows into the sim-visible "
            f"{f.sink!r} sink{via}; simulated quantities must be "
            "deterministic functions of the seed"
        )
        out.append((f.module_key, f.line, f.col, rule, message))
    return out
