"""repro-lint: AST checks for determinism and simulation invariants.

The reproduction's headline guarantees — bit-identical reruns from one
seed and ``sim_ms`` values that come only from the structural cost
model — are easy to break with a single careless line: a stray
``np.random.shuffle``, a ``time.perf_counter()`` folded into a kernel,
a hand-rolled ``sim_ms +=``.  This module turns those conventions into
machine-checked rules so they cannot regress silently.

Rules
-----

========  ==============================================================
RPL000    Suppression comment without a justification (or malformed).
RPL001    Global / unseeded randomness: any ``np.random.*`` use other
          than type references, stdlib ``random`` imports; all
          randomness must be routed through :mod:`repro._rng`
          (the only module allowed to call ``default_rng``).
RPL002    Wall-clock reads (``time.time``/``perf_counter``/…,
          ``datetime.now``) inside simulation code (``gpusim``,
          ``core``, ``gunrock``, ``graphblas``, ``graph``), where all
          timing must come from the cost model.  ``_clock.py`` is the
          sanctioned escape hatch for wall-clock *measurement*.
RPL003    Hand-rolled ``sim_ms`` arithmetic bypassing the
          :class:`~repro.gpusim.cost_model.CostModel`: any
          ``sim_ms += …`` anywhere; plain ``sim_ms = …`` inside the
          device-simulation layers (``gpusim``, ``gunrock``,
          ``graphblas``).  Closed-form CPU formulas in ``core`` stay
          legal — rewriting them would perturb golden float values.
RPL004    Silent int64→int32 narrowing in CSR/frontier code (``graph``,
          ``gunrock``, ``graphblas``): ``.astype(np.int32)``,
          ``dtype=np.int32`` and ``np.int32(…)`` truncate vertex/edge
          ids above 2**31 without warning.
RPL005    Bare ``except:`` — swallows ``KeyboardInterrupt`` and masks
          real failures.
RPL006    ``except Exception/BaseException/ReproError`` whose body is
          exactly ``pass`` — a silently swallowed error.
RPL007    Manual :class:`~repro.trace.TraceSpan` construction (or a
          ``TraceSpan`` import) outside :mod:`repro.trace` itself.
          Spans must be emitted through ``Trace.emit`` /
          ``span_phase`` so the simulated-time cursor, phase stack,
          and superstep tags stay consistent; a hand-built span would
          silently break the tiling invariant the property tests
          assert.
RPL008    Ad-hoc module-level metric state: a module-global counter /
          tally dict (``cache_hits = 0``, ``_retry_counts = {}``,
          ``METRICS = Counter()``, …) anywhere except
          :mod:`repro.metrics` itself and the gpusim counter bridge
          (``gpusim/counters.py``).  Metrics must go through the
          :mod:`repro.metrics` registry — module globals are invisible
          to exporters, unlabelled, racy under the process pool, and
          reset on import order.
RPL009    Direct numpy scatter/segmented-reduce kernel calls
          (``np.<ufunc>.at`` / ``np.<ufunc>.reduceat``) in algorithm
          hot paths (``core``, ``gunrock``, ``graphblas``) outside
          :mod:`repro.backend`.  These are exactly the primitives the
          backend layer abstracts (``scatter_reduce`` /
          ``segmented_reduce`` / …); calling numpy directly pins the
          kernel to the reference implementation and silently exempts
          it from the compiled backends' speedups and the cross-backend
          bit-identity suites.  Route the call through
          ``repro.backend.current()``; a deliberate exception takes a
          justified suppression.
RPL010    Async-serving hygiene in the serving layer (``serve``):
          an ``asyncio.Queue()`` (or ``PriorityQueue``/``LifoQueue``)
          constructed without a ``maxsize`` is an unbounded admission
          queue — overload then manifests as memory growth and
          unbounded latency instead of an explicit shed; and a
          statement-level ``asyncio.create_task(…)`` /
          ``ensure_future(…)`` whose task object is discarded is
          fire-and-forget — the task can be garbage-collected mid-run
          and its exceptions vanish.  Bound every queue; keep a
          reference to every task (a ``TaskGroup``-managed spawn takes
          a justified suppression).
RPL999    File does not parse.
========  ==============================================================

Suppressions
------------

A violation is waived with a same-line comment::

    risky_line()  # repro-lint: disable=RPL004 — scipy requires int32 here

Multiple ids separate with commas (``disable=RPL004,RPL002``).  The
text after the rule list is the justification; leaving it empty raises
RPL000, which is itself never suppressible.  ``repl:`` is accepted as a
short alias for ``repro-lint:``, and the *blanket* form ::

    risky_line()  # repl: justified — why this line is exempt

suppresses every rule on its line exactly once.  A suppression that
matches no violation raises the RPL011 "unused suppression" warning so
stale waivers cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .rules import CATALOG, rule_meta

__all__ = [
    "Violation",
    "RULES",
    "collect_suppressions",
    "raw_lint_source",
    "apply_suppressions",
    "lint_file",
    "lint_paths",
    "lint_source",
]


#: rule id -> one-line summary (the catalogue ``--list-rules`` prints).
#: Derived from the package-wide catalogue so the two never diverge.
RULES: Dict[str, str] = {m.id: m.summary for m in CATALOG.values()}

# Directory scopes (matched against any path component, so the rules
# apply equally to src/repro/<dir>/ and to fixture trees mirroring it).
_WALL_CLOCK_DIRS = frozenset({"gpusim", "core", "gunrock", "graphblas", "graph"})
_NARROWING_DIRS = frozenset({"graph", "gunrock", "graphblas"})
_SIM_MS_ASSIGN_DIRS = frozenset({"gpusim", "gunrock", "graphblas"})

# RPL009 scope: the algorithm hot paths whose kernels the backend layer
# (repro.backend) owns.  A "backend" path component exempts the layer's
# own implementations.
_BACKEND_KERNEL_DIRS = frozenset({"core", "gunrock", "graphblas"})

# The ufunc methods that constitute a kernel launch: elementwise
# scatter-reduce and segmented reduction.
_BACKEND_KERNEL_METHODS = frozenset({"at", "reduceat"})

# RPL010 scope: the async serving layer, where admission control and
# task lifetime are correctness properties, not style.
_ASYNC_HYGIENE_DIRS = frozenset({"serve"})
_ASYNC_QUEUE_NAMES = frozenset({"Queue", "PriorityQueue", "LifoQueue"})
_ASYNC_SPAWN_NAMES = frozenset({"create_task", "ensure_future"})

# np.random members that are type/class references, not stream draws.
_RNG_TYPE_NAMES = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
    }
)
_WALL_CLOCK_FROM_IMPORTS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
        ("datetime", "datetime"),
    }
)

_SWALLOWABLE = frozenset({"Exception", "BaseException", "ReproError"})

# RPL008: module-level names that read as metric state.  Matching is on
# the lowercased name with leading underscores stripped.
_METRICISH_EXACT = frozenset(
    {"metrics", "counters", "counter", "count", "total", "hits", "misses"}
)
_METRICISH_SUFFIXES = (
    "_count",
    "_counts",
    "_counter",
    "_counters",
    "_total",
    "_totals",
    "_hits",
    "_misses",
)

# RPL008 exemption scoping: a file named metrics.py is only *the*
# metrics module when it is not nested under one of the package's
# subsystem directories (repro/core/metrics.py — the coloring-quality
# metrics — is NOT the registry and gets no exemption).
_METRIC_EXEMPT_DENY_DIRS = frozenset(
    {"core", "harness", "graph", "gunrock", "graphblas", "apps", "analysis"}
)

_SUPPRESS_MARKS = ("repro-lint:", "repl:")
_SUPPRESS_RE = re.compile(
    r"#\s*(?:repro-lint|repl):\s*"
    r"(?:disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)|(justified)\b)(.*)$"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    file: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def severity(self) -> str:
        return rule_meta(self.rule).severity

    @property
    def category(self) -> str:
        return rule_meta(self.rule).category

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "category": self.category,
        }


@dataclass(frozen=True)
class _Suppression:
    line: int
    col: int
    rules: frozenset
    justified: bool
    malformed: bool = False
    #: The blanket ``justified`` form — waives every rule on the line.
    blanket: bool = False

    def matches(self, rule: str) -> bool:
        """Whether this suppression waives ``rule`` on its line.

        RPL000 (suppression hygiene) and RPL011 (unused suppression)
        police the suppressions themselves and are never waivable.
        """
        if self.malformed or rule in ("RPL000", "RPL011"):
            return False
        return self.blanket or rule in self.rules


def _in_dirs(path: PurePath, dirs: frozenset) -> bool:
    return any(part in dirs for part in path.parts[:-1])


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for pure Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_int32(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value == "int32":
        return True
    return _dotted(node) in ("np.int32", "numpy.int32")


def collect_suppressions(source: str) -> List[_Suppression]:
    """All suppression comments in ``source`` (both marker spellings)."""
    found: List[_Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT or not any(
                mark in tok.string for mark in _SUPPRESS_MARKS
            ):
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                found.append(
                    _Suppression(
                        line=tok.start[0],
                        col=tok.start[1],
                        rules=frozenset(),
                        justified=False,
                        malformed=True,
                    )
                )
                continue
            if m.group(2):  # the blanket ``justified`` form
                found.append(
                    _Suppression(
                        line=tok.start[0],
                        col=tok.start[1],
                        rules=frozenset(),
                        justified=True,
                        blanket=True,
                    )
                )
                continue
            rules = frozenset(r.strip() for r in m.group(1).split(","))
            justification = m.group(3).strip().lstrip("—–-:").strip()
            found.append(
                _Suppression(
                    line=tok.start[0],
                    col=tok.start[1],
                    rules=rules,
                    justified=bool(justification),
                )
            )
    except tokenize.TokenError:
        pass  # the AST pass will report RPL999 for truncated sources
    return found


#: Backwards-compatible private alias.
_collect_suppressions = collect_suppressions


class _Checker(ast.NodeVisitor):
    def __init__(self, path: PurePath):
        self.path = path
        base = path.name
        self.is_rng_module = base == "_rng.py"
        self.is_trace_module = base == "trace.py"
        self.check_wall_clock = (
            _in_dirs(path, _WALL_CLOCK_DIRS) and base != "_clock.py"
        )
        self.check_narrowing = _in_dirs(path, _NARROWING_DIRS)
        self.check_sim_ms_assign = _in_dirs(path, _SIM_MS_ASSIGN_DIRS)
        self.check_backend_kernels = _in_dirs(
            path, _BACKEND_KERNEL_DIRS
        ) and "backend" not in path.parts
        self.check_async_hygiene = _in_dirs(path, _ASYNC_HYGIENE_DIRS)
        #: names imported `from asyncio import ...` (asname -> original)
        self._asyncio_froms: Dict[str, str] = {}
        self.check_adhoc_metrics = not (
            (
                base == "metrics.py"
                and not _in_dirs(path, _METRIC_EXEMPT_DENY_DIRS)
            )
            or (base == "counters.py" and "gpusim" in path.parts)
        )
        self.violations: List[Violation] = []

    # -- helpers ------------------------------------------------------------

    def _hit(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(
                file=str(self.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- RPL008: ad-hoc module-level metric state -----------------------------

    @staticmethod
    def _is_metricish_name(name: str) -> bool:
        norm = name.lower().lstrip("_")
        return norm in _METRICISH_EXACT or norm.endswith(_METRICISH_SUFFIXES)

    @staticmethod
    def _is_metric_state(value: ast.AST) -> bool:
        """Initializers that read as a tally: numeric zero-state, a dict
        literal, or Counter()/defaultdict()/dict()."""
        if isinstance(value, ast.Constant):
            return isinstance(value.value, (int, float)) and not isinstance(
                value.value, bool
            )
        if isinstance(value, ast.Dict):
            return True
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            return dotted is not None and (
                dotted in ("Counter", "defaultdict", "dict")
                or dotted.endswith((".Counter", ".defaultdict"))
            )
        return False

    def visit_Module(self, node: ast.Module) -> None:
        if self.check_adhoc_metrics:
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                if value is None or not self._is_metric_state(value):
                    continue
                for t in targets:
                    if isinstance(t, ast.Name) and self._is_metricish_name(
                        t.id
                    ):
                        self._hit(
                            stmt,
                            "RPL008",
                            f"module-level metric state {t.id!r}; emit "
                            "through the repro.metrics registry instead "
                            "(module globals are unlabelled, unexported, "
                            "and lost across pool workers)",
                        )
        self.generic_visit(node)

    # -- RPL001: global randomness ------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._hit(
                    node,
                    "RPL001",
                    "stdlib 'random' import; route randomness through "
                    "repro._rng",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if mod == "asyncio":
            for alias in node.names:
                self._asyncio_froms[alias.asname or alias.name] = alias.name
        if mod == "random" or mod.startswith("random."):
            self._hit(
                node,
                "RPL001",
                "stdlib 'random' import; route randomness through repro._rng",
            )
        if self.check_wall_clock:
            for alias in node.names:
                if (mod, alias.name) in _WALL_CLOCK_FROM_IMPORTS:
                    self._hit(
                        node,
                        "RPL002",
                        f"wall-clock import '{mod}.{alias.name}' in "
                        "simulation code; sim_ms must come from the cost "
                        "model (repro._clock for wall measurement)",
                    )
        if not self.is_trace_module and (
            mod == "trace" or mod.endswith(".trace")
        ):
            for alias in node.names:
                if alias.name == "TraceSpan":
                    self._hit(
                        node,
                        "RPL007",
                        "TraceSpan imported outside repro.trace; emit spans "
                        "through Trace.emit/span_phase so the simulated-time "
                        "cursor stays consistent",
                    )
        self.generic_visit(node)

    def _check_np_random(self, node: ast.Attribute) -> bool:
        """RPL001 on np.random uses; True when handled (skip children)."""
        dotted = _dotted(node)
        if dotted is None:
            return False
        if dotted in ("np.random", "numpy.random"):
            self._hit(
                node,
                "RPL001",
                "bare np.random namespace use (global RNG state); route "
                "randomness through repro._rng",
            )
            return True
        if dotted.startswith(("np.random.", "numpy.random.")):
            leaf = node.attr
            if leaf in _RNG_TYPE_NAMES:
                return True  # type reference, not a draw
            if leaf == "default_rng" and self.is_rng_module:
                return True
            self._hit(
                node,
                "RPL001",
                f"np.random.{leaf}: global/unseeded randomness; route "
                "randomness through repro._rng",
            )
            return True
        return False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._check_np_random(node):
            return  # do not descend: the inner np.random would re-fire
        self.generic_visit(node)

    # -- RPL010: async-serving hygiene ----------------------------------------

    def _asyncio_leaf(self, func: ast.AST) -> Optional[str]:
        """The asyncio member a call resolves to (``Queue``,
        ``create_task``, …) through ``asyncio.X``, a ``from asyncio
        import X [as y]`` alias, or — for the spawn functions only —
        any ``<obj>.create_task``/``ensure_future`` method (an event
        loop held under another name is still a spawn)."""
        dotted = _dotted(func)
        if dotted is not None and "." in dotted:
            head, leaf = dotted.split(".", 1)[0], dotted.rsplit(".", 1)[-1]
            if head == "asyncio":
                return leaf
            if leaf in _ASYNC_SPAWN_NAMES:
                return leaf
            return None
        if isinstance(func, ast.Name):
            return self._asyncio_froms.get(func.id)
        return None

    def visit_Expr(self, node: ast.Expr) -> None:
        if self.check_async_hygiene and isinstance(node.value, ast.Call):
            leaf = self._asyncio_leaf(node.value.func)
            if leaf in _ASYNC_SPAWN_NAMES:
                self._hit(
                    node,
                    "RPL010",
                    f"fire-and-forget {leaf}(): the task object is "
                    "discarded, so it can be garbage-collected mid-run "
                    "and its exceptions vanish; keep a reference and "
                    "await/collect it",
                )
        self.generic_visit(node)

    # -- RPL002: wall clock ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if self.check_async_hygiene:
            leaf = self._asyncio_leaf(node.func)
            if (
                leaf in _ASYNC_QUEUE_NAMES
                and not node.args
                and not any(kw.arg == "maxsize" for kw in node.keywords)
            ):
                self._hit(
                    node,
                    "RPL010",
                    f"unbounded asyncio.{leaf}() in serving code; pass "
                    "maxsize so overload becomes an explicit shed, not "
                    "memory growth and unbounded latency",
                )
        if (
            not self.is_trace_module
            and dotted is not None
            and (dotted == "TraceSpan" or dotted.endswith(".TraceSpan"))
        ):
            self._hit(
                node,
                "RPL007",
                "manual TraceSpan construction outside repro.trace; emit "
                "spans through Trace.emit/span_phase so the simulated-time "
                "cursor stays consistent",
            )
        if (
            self.check_backend_kernels
            and dotted is not None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _BACKEND_KERNEL_METHODS
            and dotted.startswith(("np.", "numpy."))
        ):
            self._hit(
                node,
                "RPL009",
                f"direct {dotted}() kernel call in an algorithm hot path; "
                "route it through repro.backend.current() so compiled "
                "backends cover it (scatter_reduce/segmented_reduce/...)",
            )
        if self.check_wall_clock and dotted in _WALL_CLOCK_CALLS:
            self._hit(
                node,
                "RPL002",
                f"wall-clock call {dotted}() in simulation code; sim_ms "
                "must come from the cost model (repro._clock for wall "
                "measurement)",
            )
        if self.check_narrowing:
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_int32(node.args[0])
            ):
                self._hit(
                    node,
                    "RPL004",
                    ".astype(int32) silently narrows vertex/edge ids",
                )
            if dotted in ("np.int32", "numpy.int32"):
                self._hit(
                    node,
                    "RPL004",
                    "np.int32(...) silently narrows vertex/edge ids",
                )
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_int32(kw.value):
                    self._hit(
                        node,
                        "RPL004",
                        "dtype=int32 silently narrows vertex/edge ids",
                    )
        self.generic_visit(node)

    # -- RPL003: sim_ms bypass ----------------------------------------------

    @staticmethod
    def _targets_sim_ms(target: ast.AST) -> bool:
        if isinstance(target, ast.Name):
            return target.id == "sim_ms"
        if isinstance(target, ast.Attribute):
            return target.attr == "sim_ms"
        return False

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._targets_sim_ms(node.target):
            self._hit(
                node,
                "RPL003",
                "sim_ms updated in place, bypassing CostModel; charge the "
                "cost model and read .total_ms",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.check_sim_ms_assign and any(
            self._targets_sim_ms(t) for t in node.targets
        ):
            self._hit(
                node,
                "RPL003",
                "sim_ms assigned directly inside the device-simulation "
                "layer; charge the cost model and read .total_ms",
            )
        self.generic_visit(node)

    # -- RPL005/RPL006: exception hygiene -------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._hit(
                node,
                "RPL005",
                "bare except: also swallows KeyboardInterrupt; name the "
                "exception type",
            )
        elif len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            names = []
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for t in types:
                if isinstance(t, ast.Name):
                    names.append(t.id)
                elif isinstance(t, ast.Attribute):
                    names.append(t.attr)
            swallowed = sorted(set(names) & _SWALLOWABLE)
            if swallowed:
                self._hit(
                    node,
                    "RPL006",
                    f"except {'/'.join(swallowed)} with a pass body "
                    "silently swallows the error; handle or re-raise",
                )
        self.generic_visit(node)


def raw_lint_source(source: str, path) -> List[Violation]:
    """The single-file pass with **no** suppression handling.

    The engine layers project-wide findings on top of this and applies
    suppressions once, centrally, so one ``# repl: justified`` comment
    covers file-local and interprocedural rules alike.
    """
    path = PurePath(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                file=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="RPL999",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    checker = _Checker(path)
    checker.visit(tree)
    return checker.violations


def apply_suppressions(
    violations: Iterable[Violation],
    suppressions: Sequence[_Suppression],
    path,
    *,
    warn_unused: bool = True,
) -> List[Violation]:
    """Filter ``violations`` through same-line suppressions.

    Adds RPL000 for malformed/unjustified suppression comments and the
    RPL011 warning for well-formed suppressions that waived nothing
    (stale waivers must not accumulate).  Each suppression comment is
    applied exactly once per line — duplicates of one finding are all
    covered by the single comment, never double-counted.  Returns the
    surviving violations sorted ``(file, line, col, rule)``.
    """
    path = PurePath(path)
    by_line: Dict[int, _Suppression] = {s.line: s for s in suppressions}
    used: Set[int] = set()
    kept: List[Violation] = []
    for v in violations:
        s = by_line.get(v.line)
        if s is not None and s.matches(v.rule):
            used.add(s.line)
            continue
        kept.append(v)
    for s in suppressions:
        if s.malformed:
            kept.append(
                Violation(
                    file=str(path),
                    line=s.line,
                    col=s.col,
                    rule="RPL000",
                    message="malformed repro-lint suppression; expected "
                    "'# repro-lint: disable=RPLxxx — justification' or "
                    "'# repl: justified — reason'",
                )
            )
        elif not s.justified:
            kept.append(
                Violation(
                    file=str(path),
                    line=s.line,
                    col=s.col,
                    rule="RPL000",
                    message="suppression lacks a justification; state why "
                    "after the rule list",
                )
            )
        elif warn_unused and s.line not in used:
            kept.append(
                Violation(
                    file=str(path),
                    line=s.line,
                    col=s.col,
                    rule="RPL011",
                    message="unused suppression: no violation on this line "
                    "matches it; remove the stale waiver",
                )
            )
    kept.sort(key=lambda v: (v.file, v.line, v.col, v.rule))
    return kept


def lint_source(source: str, path) -> List[Violation]:
    """Lint one source string; ``path`` scopes the directory rules.

    This is the *single-file* surface: interprocedural rules do not run
    here, so unused-suppression warnings (RPL011) are left to the
    engine, which sees every rule family before judging a suppression
    stale.
    """
    raw = raw_lint_source(source, path)
    if any(v.rule == "RPL999" for v in raw):
        return raw
    return apply_suppressions(
        raw, collect_suppressions(source), path, warn_unused=False
    )


def lint_file(path) -> List[Violation]:
    """Lint one Python file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), p)


def _iter_python_files(paths: Sequence) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py" or p.is_file():
            yield p
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")


def lint_paths(paths: Sequence) -> List[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    out: List[Violation] = []
    for p in _iter_python_files(paths):
        out.extend(lint_file(p))
    return out
