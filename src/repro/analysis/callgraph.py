"""Module index and best-effort call graph for the analysis engine.

The interprocedural passes (:mod:`repro.analysis.dataflow`, the RPL2xx
rules) need two things the single-file lint never did: a *project* view
of every module being analyzed, and a way to resolve a call expression
to the function definition it lands on.  Resolution is deliberately
best-effort — Python's dynamism makes a sound call graph impossible —
and errs on the side of *unresolved* (the dataflow layer treats an
unresolved call conservatively rather than guessing).

Resolved call shapes:

* ``f(...)`` — a function defined earlier or later in the same module,
  or imported via ``from mod import f [as g]`` (absolute or relative);
* ``mod.f(...)`` — where ``mod`` comes from ``import package.mod as
  mod`` / ``import mod``;
* ``self.m(...)`` / ``cls.m(...)`` — a method of the lexically
  enclosing class.

Everything else (attribute chains on objects, calls through variables,
``getattr``) is unresolved.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for pure Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method definition inside a module."""

    module: "ModuleInfo"
    qualname: str  # "f" or "Class.f"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    enclosing_class: Optional[str] = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def params(self) -> List[str]:
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args]
        if self.enclosing_class and names and names[0] in ("self", "cls"):
            names = names[1:]
        names.extend(p.arg for p in a.kwonlyargs)
        return names

    def key(self) -> Tuple[str, str]:
        return (self.module.key, self.qualname)


@dataclass
class ModuleInfo:
    """One parsed source file plus its import environment."""

    key: str  # normalized posix path, the project-wide identity
    path: PurePath
    tree: ast.Module
    #: dotted module name guess ("repro.core.gr_is"), or None.
    modname: Optional[str] = None
    #: ``import numpy as np`` -> {"np": "numpy"}
    imports: Dict[str, str] = field(default_factory=dict)
    #: ``from mod import f as g`` -> {"g": ("mod", "f")} (module resolved
    #: to a dotted absolute name when the relative level can be applied).
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def top_level_names(self) -> List[str]:
        """Names bound by module-level assignments (shared-state roots)."""
        out: List[str] = []
        for stmt in self.tree.body:
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for t in targets:
                if isinstance(t, ast.Name):
                    out.append(t.id)
        return out


def _guess_modname(path: PurePath) -> Optional[str]:
    """Dotted module name from a path, anchored at the last package root
    we recognize (a ``repro`` component, or ``src``'s first child)."""
    parts = list(path.parts)
    stem = path.stem
    anchors = [i for i, p in enumerate(parts) if p == "repro"]
    if anchors:
        rel = parts[anchors[-1]:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(rel)
    return stem if stem != "__init__" else None


class Project:
    """The set of modules under analysis, with call resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.key: m for m in modules}
        self.by_modname: Dict[str, ModuleInfo] = {}
        for m in modules:
            if m.modname:
                # First writer wins so duplicate stems in fixture trees
                # stay deterministic (modules arrive key-sorted).
                self.by_modname.setdefault(m.modname, m)

    def sorted_modules(self) -> List[ModuleInfo]:
        return [self.modules[k] for k in sorted(self.modules)]

    def function(self, modname: str, name: str) -> Optional[FunctionInfo]:
        mod = self.by_modname.get(modname)
        if mod is None:
            return None
        return mod.functions.get(name)

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        *,
        enclosing_class: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo a call lands on, or None when unknown."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            fn = module.functions.get(name)
            if fn is not None and fn.enclosing_class is None:
                return fn
            target = module.from_imports.get(name)
            if target is not None:
                return self.function(target[0], target[1])
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and enclosing_class:
                    return module.functions.get(
                        f"{enclosing_class}.{func.attr}"
                    )
                target_mod = module.imports.get(base.id)
                if target_mod is not None:
                    return self.function(target_mod, func.attr)
                # ``from pkg import mod`` then ``mod.f()``
                from_target = module.from_imports.get(base.id)
                if from_target is not None:
                    dotted = ".".join(p for p in from_target if p)
                    return self.function(dotted, func.attr)
        return None


def _absolute_module(modname: Optional[str], node: ast.ImportFrom) -> str:
    """Resolve a (possibly relative) ``from … import`` to a dotted name."""
    target = node.module or ""
    if node.level == 0:
        return target
    if not modname:
        return target
    base = modname.split(".")
    # level=1 strips the module's own name; each extra level one package.
    base = base[: max(len(base) - node.level, 0)]
    return ".".join(base + ([target] if target else []))


def index_module(key: str, path: PurePath, tree: ast.Module) -> ModuleInfo:
    """Build the import table and function index for one parsed file."""
    mod = ModuleInfo(key=key, path=path, tree=tree, modname=_guess_modname(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mod.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    mod.imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            absolute = _absolute_module(mod.modname, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                mod.from_imports[alias.asname or alias.name] = (
                    absolute,
                    alias.name,
                )

    def index_functions(body, cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{cls}.{stmt.name}" if cls else stmt.name
                mod.functions[qual] = FunctionInfo(
                    module=mod,
                    qualname=qual,
                    node=stmt,
                    enclosing_class=cls,
                )
            elif isinstance(stmt, ast.ClassDef) and cls is None:
                index_functions(stmt.body, stmt.name)

    index_functions(tree.body, None)
    return mod


def build_project(sources: Dict[str, Tuple[PurePath, ast.Module]]) -> Project:
    """Assemble a Project from ``{key: (path, parsed tree)}``."""
    modules = [
        index_module(key, path, tree)
        for key, (path, tree) in sorted(sources.items())
    ]
    return Project(modules)


def load_project(paths: Sequence) -> Project:
    """Parse the given files into a Project, skipping unparsable ones."""
    sources: Dict[str, Tuple[PurePath, ast.Module]] = {}
    for raw in paths:
        p = Path(raw)
        try:
            tree = ast.parse(p.read_text(encoding="utf-8"), filename=str(p))
        except (SyntaxError, OSError, UnicodeDecodeError):
            continue
        sources[p.as_posix()] = (PurePath(p), tree)
    return build_project(sources)
