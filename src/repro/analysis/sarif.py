"""SARIF 2.1.0 export for repro-lint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard code scanners speak to CI dashboards.  We emit the minimal
valid profile: one ``run``, a ``tool.driver`` carrying the full rule
catalogue, and one ``result`` per violation with a physical location.
Columns are 1-based in SARIF while the linter records 0-based offsets,
so ``startColumn = col + 1``.

:func:`validate_sarif` is a structural self-check (used by tests and
the CI artifact step) — it verifies the invariants this module
promises, not the full OASIS schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .rules import CATALOG, DOCS_URI, rule_meta

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(meta) -> Dict:
    return {
        "id": meta.id,
        "name": meta.id,
        "shortDescription": {"text": meta.summary},
        "helpUri": DOCS_URI,
        "defaultConfiguration": {
            "level": _LEVELS.get(meta.severity, "error")
        },
        "properties": {"category": meta.category},
    }


def to_sarif(violations: Iterable) -> Dict:
    """Build the SARIF 2.1.0 document for an iterable of Violations.

    Only rules that actually fired are listed in the driver (plus
    nothing else), keeping the document small and the ``ruleIndex``
    references exact.
    """
    violations = list(violations)
    fired = sorted({v.rule for v in violations})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    results: List[Dict] = []
    for v in violations:
        meta = rule_meta(v.rule)
        results.append(
            {
                "ruleId": v.rule,
                "ruleIndex": rule_index[v.rule],
                "level": _LEVELS.get(meta.severity, "error"),
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": str(v.file).replace("\\", "/"),
                            },
                            "region": {
                                "startLine": max(v.line, 1),
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": DOCS_URI,
                        "rules": [
                            _rule_descriptor(rule_meta(rule_id))
                            for rule_id in fired
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def validate_sarif(doc: Dict) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: List[str] = []

    def need(cond: bool, msg: str) -> None:
        if not cond:
            problems.append(msg)

    need(isinstance(doc, dict), "document is not an object")
    if not isinstance(doc, dict):
        return problems
    need(doc.get("version") == SARIF_VERSION, "version != 2.1.0")
    need(doc.get("$schema") == SARIF_SCHEMA, "$schema missing or wrong")
    runs = doc.get("runs")
    need(isinstance(runs, list) and len(runs) == 1, "expected exactly one run")
    if not (isinstance(runs, list) and runs):
        return problems
    run = runs[0]
    driver = run.get("tool", {}).get("driver", {})
    need(driver.get("name") == "repro-lint", "driver.name != repro-lint")
    rules = driver.get("rules", [])
    need(isinstance(rules, list), "driver.rules is not a list")
    ids = [r.get("id") for r in rules]
    need(len(ids) == len(set(ids)), "duplicate rule ids in driver")
    results = run.get("results", [])
    need(isinstance(results, list), "run.results is not a list")
    for i, res in enumerate(results):
        rid = res.get("ruleId")
        need(isinstance(rid, str), f"results[{i}].ruleId missing")
        idx = res.get("ruleIndex")
        ok_idx = (
            isinstance(idx, int) and 0 <= idx < len(ids) and ids[idx] == rid
        )
        need(ok_idx, f"results[{i}].ruleIndex does not point at its rule")
        need(res.get("level") in ("error", "warning", "note"),
             f"results[{i}].level invalid")
        need(
            isinstance(res.get("message", {}).get("text"), str),
            f"results[{i}].message.text missing",
        )
        locs = res.get("locations", [])
        need(
            isinstance(locs, list) and len(locs) == 1,
            f"results[{i}] needs exactly one location",
        )
        if locs:
            region = locs[0].get("physicalLocation", {}).get("region", {})
            need(
                isinstance(region.get("startLine"), int)
                and region["startLine"] >= 1,
                f"results[{i}].startLine must be >= 1",
            )
            need(
                isinstance(region.get("startColumn"), int)
                and region["startColumn"] >= 1,
                f"results[{i}].startColumn must be >= 1",
            )
    return problems
