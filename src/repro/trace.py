"""Structured tracing for the simulated GPU stack (``repro.trace``).

The harness's end-of-run aggregates (``sim_ms``, ``colors``,
``iterations``) say *how much* simulated time an algorithm spent, not
*where*.  The paper's analysis depends on the where: Gunrock explains
load-imbalance effects with per-operator profiles, and GraphBLAST
attributes runtime to individual masked-semiring operations ("a second
call to GrB_vxm ends up taking nearly 50% of the runtime", §V-C).  This
module is the attribution layer that makes those per-kernel /
per-iteration shapes visible for our simulated runs.

How it works
------------

When tracing is enabled — ``REPRO_TRACE=1`` in the environment, or an
:func:`activate` scope — every :class:`~repro.gpusim.CostModel` carries
a :class:`Trace` on ``cost.trace`` (``None`` otherwise, so every
instrumented site pays exactly one attribute check when tracing is
off).  Each ``charge_*`` call then emits a :class:`TraceSpan` carrying
the kernel's semantic name, charge kind, work count, simulated
milliseconds, the superstep it ran in, the enclosing *phase path*
(e.g. ``"superstep/advance_op"``), and the algorithm iteration.

Phases come from scopes the framework layers open with
:meth:`Trace.phase`: the Gunrock enactor wraps each bulk-synchronous
iteration in a ``"superstep"`` scope, the Gunrock operators and every
GraphBLAS operation open a scope named after themselves, and the
``core`` algorithms tag iterations via :meth:`Trace.set_iteration` —
so spans nest (``advance`` → segmented reduce, ``vxm`` → eWiseMult)
without the algorithms hand-building any span objects.  Constructing
:class:`TraceSpan` anywhere outside this module is a lint violation
(rule ``RPL007``, see ``docs/static-analysis.md``).

The trace clock is *simulated* time: a span starts at the cumulative
``sim_ms`` charged before it and lasts exactly its charge.  Exports:

* :meth:`Trace.to_chrome` — Chrome/Perfetto ``trace_event`` JSON
  (load in https://ui.perfetto.dev or ``chrome://tracing``);
* :meth:`Trace.aggregate` — the per-kernel totals table;
* :meth:`Trace.by_phase` — simulated ms per top-level phase (the
  breakdown columns ``grid_to_rows`` emits).

Invariants (locked down by ``tests/test_trace_properties.py`` and the
golden suite):

* tracing never perturbs results — ``sim_ms``, ``colors``,
  ``iterations`` and every :class:`~repro.gpusim.SimCounters` record
  are bit-identical with tracing on or off;
* span ``ms`` values sum exactly (same float additions, in order) to
  ``counters.total_ms``;
* spans within one run never overlap: each begins where the previous
  ended, and phase scopes strictly nest.

Traces are plain picklable data, so process-pool grid workers ship
them back to the parent unchanged (``run_grid(trace=True)`` returns
the same traces at any worker count).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "trace_enabled",
    "activate",
    "TraceSpan",
    "Trace",
    "span_phase",
    "tag_iteration",
    "validate_chrome_trace",
]

ENV_VAR = "REPRO_TRACE"

#: Explicit (non-environment) activation depth; see :func:`activate`.
_active_depth = 0


def trace_enabled() -> bool:
    """Whether new :class:`~repro.gpusim.CostModel` instances should
    carry a trace (``REPRO_TRACE`` truthy, or an :func:`activate`
    scope is open)."""
    if _active_depth > 0:
        return True
    return os.environ.get(ENV_VAR, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


class activate:
    """Context manager: enable tracing for the dynamic extent of the
    block without touching the environment (the explicit opt-in behind
    ``run_grid(trace=True)``).  Re-entrant."""

    def __enter__(self) -> "activate":
        global _active_depth
        _active_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active_depth
        _active_depth -= 1


@dataclass(frozen=True)
class TraceSpan:
    """One traced event: a simulated kernel charge or a phase scope.

    Only :class:`Trace` may construct these (lint rule ``RPL007``);
    everything else reads them.
    """

    name: str  # semantic label ("vxm_max", "advance_op", …)
    kind: str  # charge kind, or "phase" for scope spans
    work: int  # work items charged (0 for phase spans)
    ms: float  # duration in simulated milliseconds
    ts_ms: float  # start time on the cumulative sim_ms clock
    end_ms: float  # end time: the exact clock value, NOT ts_ms + ms
    # (ts_ms + ms can differ from the cursor by one ULP; storing the
    # cursor keeps "each span starts where the previous ended" exact)
    superstep: int  # superstep counter at emission
    phase: str  # "/"-joined enclosing phase path ("" at top level)
    iteration: int  # algorithm iteration tag (-1 before the first)
    device: int = 0  # owning device id (0 in single-device runs)


class _PhaseScope:
    """Context manager returned by :meth:`Trace.phase`."""

    __slots__ = ("_trace", "_name")

    def __init__(self, trace: "Trace", name: str) -> None:
        self._trace = trace
        self._name = name

    def __enter__(self) -> "Trace":
        self._trace._open_phase(self._name)
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> None:
        self._trace._close_phase()


class _NullScope:
    """Shared no-op scope for untraced runs (no per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SCOPE = _NullScope()


class Trace:
    """Per-run structured trace: an append-only list of spans plus the
    scope state (phase stack, superstep, iteration) used to tag them.

    The clock is the cumulative simulated milliseconds charged so far;
    :meth:`emit` advances it by exactly the charge, so consecutive
    kernel spans tile the timeline without gaps or overlaps, and the
    sum of kernel-span ``ms`` equals ``SimCounters.total_ms`` term for
    term.
    """

    def __init__(
        self, *, algorithm: str = "", dataset: str = "", device: int = 0
    ) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        #: Device id stamped on every span this trace emits.  0 for
        #: single-device runs; cluster runs give each per-device
        #: CostModel a trace with its own id and merge afterwards
        #: (:meth:`merge_devices`).
        self.device = int(device)
        # Kernel-execution backend label (repro.backend).  Purely
        # informational: excluded from fingerprint() and __eq__ because
        # backends are bit-identical — the same run on another backend
        # IS the same trace.
        self.backend = ""
        self.spans: List[TraceSpan] = []
        self.superstep = 0
        self.iteration = -1
        self._cursor_ms = 0.0
        # (name, start_ms, start_superstep, start_iteration) per open scope
        self._phase_stack: List[Tuple[str, float, int, int]] = []

    # -- recording ----------------------------------------------------------

    def emit(self, name: str, kind: str, work: int, ms: float) -> None:
        """Record one kernel charge (called by ``CostModel._record``)."""
        end = self._cursor_ms + ms
        self.spans.append(
            TraceSpan(
                name=name,
                kind=kind,
                work=int(work),
                ms=ms,
                ts_ms=self._cursor_ms,
                end_ms=end,
                superstep=self.superstep,
                phase="/".join(s[0] for s in self._phase_stack),
                iteration=self.iteration,
                device=self.device,
            )
        )
        self._cursor_ms = end

    def phase(self, name: str) -> _PhaseScope:
        """Open a named phase scope; kernel spans emitted inside carry
        the scope path, and a ``kind="phase"`` span covering the scope's
        extent is recorded when it closes."""
        return _PhaseScope(self, name)

    def _open_phase(self, name: str) -> None:
        self._phase_stack.append(
            (name, self._cursor_ms, self.superstep, self.iteration)
        )

    def _close_phase(self) -> None:
        name, start_ms, start_step, start_iter = self._phase_stack.pop()
        self.spans.append(
            TraceSpan(
                name=name,
                kind="phase",
                work=0,
                ms=self._cursor_ms - start_ms,
                ts_ms=start_ms,
                end_ms=self._cursor_ms,
                superstep=start_step,
                phase="/".join(s[0] for s in self._phase_stack),
                iteration=start_iter,
                device=self.device,
            )
        )

    def advance_superstep(self) -> None:
        """Called at every global sync (``CostModel.charge_sync``)."""
        self.superstep += 1

    def set_iteration(self, iteration: int) -> None:
        """Tag subsequent spans with the algorithm's outer iteration."""
        self.iteration = int(iteration)

    @classmethod
    def merge_devices(
        cls,
        traces: List["Trace"],
        *,
        algorithm: str = "",
        dataset: str = "",
        total_ms: Optional[float] = None,
    ) -> "Trace":
        """Combine per-device traces into one cluster trace.

        Spans are concatenated in device order (each span already
        carries its ``device`` id), so the merge is deterministic; the
        merged clock is the caller-supplied cluster makespan when
        given, else the slowest device's clock.  Lives here because
        only this module may handle :class:`TraceSpan` construction
        and internals (rule ``RPL007``).
        """
        merged = cls(algorithm=algorithm, dataset=dataset)
        for t in traces:
            merged.spans.extend(t.spans)
            merged.superstep = max(merged.superstep, t.superstep)
            merged.iteration = max(merged.iteration, t.iteration)
        merged._cursor_ms = (
            float(total_ms)
            if total_ms is not None
            else max((t.total_ms for t in traces), default=0.0)
        )
        return merged

    # -- views --------------------------------------------------------------

    @property
    def total_ms(self) -> float:
        """Cumulative simulated ms of all kernel spans (the clock)."""
        return self._cursor_ms

    def kernel_spans(self) -> List[TraceSpan]:
        """Spans from cost-model charges (phase scope spans excluded)."""
        return [s for s in self.spans if s.kind != "phase"]

    def phase_spans(self) -> List[TraceSpan]:
        """The ``kind="phase"`` scope spans, in close order."""
        return [s for s in self.spans if s.kind == "phase"]

    def aggregate(self) -> List[Dict]:
        """Per-kernel totals (name, kind, calls, work, ms), hottest
        first — the profile table the CLI prints."""
        agg: Dict[str, Dict] = {}
        for s in self.kernel_spans():
            row = agg.setdefault(
                s.name,
                {"Kernel": s.name, "Kind": s.kind, "Calls": 0, "Work": 0, "ms": 0.0},
            )
            row["Calls"] += 1
            row["Work"] += s.work
            row["ms"] += s.ms
        return sorted(agg.values(), key=lambda r: (-r["ms"], r["Kernel"]))

    def by_phase(self) -> Dict[str, float]:
        """Simulated ms per *top-level* phase (kernel spans grouped by
        the first segment of their phase path; ``"(untracked)"`` for
        spans outside any scope)."""
        out: Dict[str, float] = {}
        for s in self.kernel_spans():
            top = s.phase.split("/", 1)[0] if s.phase else "(untracked)"
            out[top] = out.get(top, 0.0) + s.ms
        return out

    def by_iteration(self) -> Dict[int, float]:
        """Simulated ms per tagged algorithm iteration."""
        out: Dict[int, float] = {}
        for s in self.kernel_spans():
            out[s.iteration] = out.get(s.iteration, 0.0) + s.ms
        return out

    def fingerprint(self) -> str:
        """A short stable content hash of the trace (16 hex chars over
        every span's full tuple plus the algorithm/dataset labels).

        Equal traces — same spans, same run — share a fingerprint, so
        it serves as the ``trace_id`` correlation key joining
        ``repro.log`` records and ``BENCH_*.json`` cells back to their
        trajectory.
        """
        h = hashlib.sha256()
        h.update(f"{self.algorithm}\x1f{self.dataset}\x1e".encode())
        for s in self.spans:
            # Device 0 hashes exactly as before the multi-device
            # extension, so every pre-existing single-device trace_id
            # is preserved byte for byte.
            dev = f"\x1fd{s.device}" if s.device else ""
            h.update(
                (
                    f"{s.name}\x1f{s.kind}\x1f{s.work}\x1f{s.ms!r}\x1f"
                    f"{s.ts_ms!r}\x1f{s.end_ms!r}\x1f{s.superstep}\x1f"
                    f"{s.phase}\x1f{s.iteration}{dev}\x1e"
                ).encode()
            )
        return h.hexdigest()[:16]

    # -- export -------------------------------------------------------------

    def to_chrome(self) -> Dict:
        """The run as a Chrome/Perfetto ``trace_event`` JSON object.

        Kernel charges and phase scopes become complete (``"ph": "X"``)
        events on one track; timestamps are the simulated clock in
        microseconds (Perfetto's native unit), so the rendered timeline
        *is* the simulated execution.  Metadata events name the process
        after the algorithm and the thread after the dataset.
        """
        devices = sorted({s.device for s in self.spans} or {0})
        multi = devices != [0]
        events: List[Dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 1,
                "args": {"name": self.algorithm or "repro-sim"},
            },
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": 1,
                "args": {"name": self.dataset or "sim-stream"},
            },
        ]
        if multi:
            # One track per device: device d renders as tid d+1.
            for d in devices:
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": 1,
                        "tid": d + 1,
                        "args": {"name": f"device {d}"},
                    }
                )
        for s in self.spans:
            args = {
                "work": s.work,
                "superstep": s.superstep,
                "phase": s.phase,
                "iteration": s.iteration,
            }
            if multi:
                args["device"] = s.device
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.kind,
                    "pid": 1,
                    "tid": s.device + 1,
                    "ts": s.ts_ms * 1000.0,
                    "dur": s.ms * 1000.0,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "algorithm": self.algorithm,
                "dataset": self.dataset,
                "backend": self.backend,
                "total_sim_ms": self.total_ms,
            },
        }

    def to_chrome_json(self, path=None) -> str:
        """Serialize :meth:`to_chrome`; optionally also write ``path``."""
        text = json.dumps(self.to_chrome(), indent=1)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    # -- comparison / pickling ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.algorithm == other.algorithm
            and self.dataset == other.dataset
            and self.spans == other.spans
        )

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"Trace({self.algorithm or '?'} on {self.dataset or '?'}: "
            f"{len(self.spans)} spans, {self.total_ms:.4f} sim-ms)"
        )


# -- instrumentation helpers --------------------------------------------------


def span_phase(trace: Optional[Trace], name: str):
    """``trace.phase(name)`` when tracing, a shared no-op scope
    otherwise — the one-attribute-check-when-disabled idiom every
    instrumented site uses."""
    if trace is None:
        return _NULL_SCOPE
    return trace.phase(name)


def tag_iteration(trace: Optional[Trace], iteration: int) -> None:
    """Tag the current algorithm iteration (no-op when untraced)."""
    if trace is not None:
        trace.set_iteration(iteration)


# -- trace_event schema validation --------------------------------------------

_REQUIRED_BY_PH = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "M": ("name", "pid"),
    "i": ("name", "ts", "pid", "tid"),
    "C": ("name", "ts", "pid", "tid"),
}


def validate_chrome_trace(obj) -> List[str]:
    """Check ``obj`` (a parsed JSON value) against the Chrome
    ``trace_event`` format; returns a list of problems (empty = valid).

    Accepts the JSON-object form (``{"traceEvents": [...]}``) or the
    bare JSON-array form.  Used by the CI trace smoke job and the CLI
    tests, so the exported format is pinned by machine check rather
    than by eyeballing Perfetto.
    """
    problems: List[str] = []
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' array"]
    elif isinstance(obj, list):
        events = obj
    else:
        return ["trace must be a JSON object or array"]
    if not events:
        problems.append("trace contains no events")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event {i}: missing 'ph' (event type)")
            continue
        for key in _REQUIRED_BY_PH.get(ph, ("ts", "pid")):
            if key not in ev:
                problems.append(f"event {i} (ph={ph!r}): missing {key!r}")
        ts = ev.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            problems.append(f"event {i}: 'ts' is not a number")
        dur = ev.get("dur")
        if dur is not None:
            if not isinstance(dur, (int, float)):
                problems.append(f"event {i}: 'dur' is not a number")
            elif dur < 0:
                problems.append(f"event {i}: negative 'dur'")
    return problems
