"""Structured JSON run-log (``repro.log``).

Where :mod:`repro.metrics` keeps cross-run aggregates, this module
keeps the **event stream**: one JSON object per line (JSONL) for every
harness lifecycle event — grid start/end, repetition outcomes, retries,
timeouts, journal replays, pool reseeds, fault firings — each stamped
with correlation ids so a line can be joined back to its grid run
(``run``), its cell (``dataset``/``algorithm``/``rep`` fields), and its
trace (``trace_id`` = :meth:`repro.trace.Trace.fingerprint`).

Off by default, same activation idiom as tracing and metrics::

    REPRO_LOG=run.jsonl python -m repro.harness table2

    from repro import log as runlog
    with runlog.activate("run.jsonl") as rl:
        run_grid(["offshore"], ["gunrock.is"])

Every record carries:

``ts``
    Wall-clock UNIX seconds (float).  This is *harness* time, never
    simulated time — the log is about the experiment process, so
    repro-lint's wall-clock rule does not apply here (and the module is
    outside ``gpusim/`` where it would).
``run``
    The run id: hex of ``time_ns ^ pid`` fixed at log construction, so
    all lines of one process share it and two concurrent processes
    almost surely differ without consuming random state (RPL001).
``seq``
    Monotonic per-log sequence number; total order even if two events
    share a timestamp.
``event``
    The event name (``grid_start``, ``rep_ok``, ``rep_retry``, …).

plus event-specific fields.  Emission is append + flush per line, so a
crashed run keeps every event that happened before the crash.  Like
metrics, the log is **parent-side**: pool workers do not write it, the
parent logs each repetition as it settles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import IO, List, Optional, Union

__all__ = [
    "ENV_VAR",
    "RunLog",
    "log_enabled",
    "active",
    "activate",
    "emit",
    "reset_env_log",
]

ENV_VAR = "REPRO_LOG"


def _make_run_id() -> str:
    # time_ns ^ pid: unique enough across concurrent harness processes
    # without touching the random module (repro-lint RPL001).
    return format(time.time_ns() ^ (os.getpid() << 20), "x")


class RunLog:
    """An append-only JSONL event log with a stable run id.

    ``target`` may be a path (opened in append mode, one line per
    event, flushed immediately) or any writable text stream.
    """

    def __init__(
        self,
        target: Union[str, "os.PathLike", IO[str]],
        *,
        run_id: Optional[str] = None,
    ):
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns = False
            self.path = getattr(target, "name", None)
        else:
            self.path = os.fspath(target)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._owns = True
        self.run_id = run_id if run_id is not None else _make_run_id()
        self._seq = 0
        # The serving layer emits from its event-loop thread while the
        # submitting thread may emit too; seq assignment + write must
        # be atomic to keep the total order the seq field promises.
        self._lock = threading.Lock()

    def emit(self, event: str, **fields) -> dict:
        """Write one record; returns the dict that was serialized."""
        with self._lock:
            record = {
                "ts": time.time(),
                "run": self.run_id,
                "seq": self._seq,
                "event": event,
            }
            record.update(fields)
            self._seq += 1
            self._fh.write(json.dumps(record, sort_keys=False) + "\n")
            self._fh.flush()
        return record

    def close(self) -> None:
        """Close the underlying file if this log opened it."""
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: Explicit activation stack (innermost scope wins).
_active_stack: List[RunLog] = []

#: Log backing ``REPRO_LOG=<path>`` runs, created on first emission.
_env_log: Optional[RunLog] = None


def log_enabled() -> bool:
    """Whether :func:`emit` currently writes anywhere."""
    return bool(_active_stack) or bool(os.environ.get(ENV_VAR, "").strip())


def active() -> Optional[RunLog]:
    """The log :func:`emit` targets: the innermost :func:`activate`
    scope, else a process-wide log appending to ``$REPRO_LOG`` when
    set, else ``None`` (events are dropped)."""
    global _env_log
    if _active_stack:
        return _active_stack[-1]
    path = os.environ.get(ENV_VAR, "").strip()
    if path:
        if _env_log is None or _env_log.path != path:
            _env_log = RunLog(path)
        return _env_log
    return None


def reset_env_log() -> None:
    """Close and forget the ``$REPRO_LOG``-backed log (tests)."""
    global _env_log
    if _env_log is not None:
        _env_log.close()
        _env_log = None


class activate:
    """Context manager: route :func:`emit` into a log for the dynamic
    extent of the block.  Accepts a path/stream (a fresh :class:`RunLog`
    is built and closed on exit) or an existing :class:`RunLog` (left
    open).  ``__enter__`` returns the log.  Re-entrant."""

    def __init__(self, target: Union[str, "os.PathLike", IO[str], RunLog]):
        if isinstance(target, RunLog):
            self.log = target
            self._close_on_exit = False
        else:
            self.log = RunLog(target)
            self._close_on_exit = True

    def __enter__(self) -> RunLog:
        _active_stack.append(self.log)
        return self.log

    def __exit__(self, exc_type, exc, tb) -> None:
        _active_stack.pop()
        if self._close_on_exit:
            self.log.close()


def emit(event: str, **fields) -> None:
    """Emit one record to the active log (no-op when logging is off)."""
    log = active()
    if log is not None:
        log.emit(event, **fields)
