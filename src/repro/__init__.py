"""repro — reproduction of "Graph Coloring on the GPU" (Osama et al., 2019).

Parallel graph-coloring algorithms expressed in two GPU abstractions —
a data-centric (Gunrock-style) framework and a linear-algebra
(GraphBLAS) framework — executing bit-exactly on the host while a
calibrated bulk-synchronous cost model reproduces the paper's
performance landscape.

Quickstart::

    from repro import generate_dataset, run_algorithm, is_valid_coloring

    g = generate_dataset("G3_circuit", scale_div=64, rng=0)
    result = run_algorithm("gunrock.is", g, rng=0)
    assert is_valid_coloring(g, result.colors)
    print(result.summary())

Subpackages
-----------
``repro.graph``
    CSR graph substrate: builders, generators, I/O, statistics.
``repro.graphblas``
    From-scratch GraphBLAS subset (vectors, matrices, semirings, masks).
``repro.gunrock``
    Data-centric frontier framework (advance / compute / neighbor-reduce).
``repro.gpusim``
    The bulk-synchronous GPU performance model.
``repro.core``
    The coloring algorithms themselves.
``repro.harness``
    Experiment runner regenerating every table and figure of the paper.
``repro.apps``
    Downstream applications (chromatic scheduling, Jacobian compression,
    register allocation).
"""

from .core import (
    ALGORITHMS,
    ColoringResult,
    FIGURE1_ALGORITHMS,
    algorithm_names,
    assert_valid_coloring,
    get_algorithm,
    is_valid_coloring,
    run_algorithm,
)
from .graph import CSRGraph, from_edges
from .graph.generators.suitesparse import generate as generate_dataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CSRGraph",
    "from_edges",
    "ColoringResult",
    "is_valid_coloring",
    "assert_valid_coloring",
    "run_algorithm",
    "get_algorithm",
    "algorithm_names",
    "ALGORITHMS",
    "FIGURE1_ALGORITHMS",
    "generate_dataset",
]
