"""Benchmark: regenerate Table I (dataset description).

Emits ``benchmarks/out/table1.txt`` pairing the paper-reported
statistics with the measured statistics of the regenerated analogues,
and asserts the analogues track the published average degrees.
"""

import pytest

from repro.harness.report import format_table, to_csv
from repro.harness.tables import table1_rows

from _bench import BENCH_SCALE_DIV, once, write_artifact


def test_table1(benchmark, artifact_dir):
    rows = once(
        benchmark,
        lambda: table1_rows(
            scale_div=BENCH_SCALE_DIV,
            include_rgg_scales=[10, 12, 14],
            diameter_samples=16,
        ),
    )
    text = format_table(
        rows, title="Table I: Dataset Description (paper vs regenerated)"
    )
    write_artifact(artifact_dir, "table1.txt", text)
    write_artifact(artifact_dir, "table1.csv", to_csv(rows))

    assert len(rows) == 15
    by_name = {r["Dataset"]: r for r in rows}
    # Degree statistics of the analogues track Table I.
    for name in ("af_shell3", "G3_circuit", "ecology2", "cage13"):
        row = by_name[name]
        paper = float(row["paper deg"])
        assert abs(row["Avg. Degree"] - paper) / paper < 0.35, name
    # af_shell3 remains the high-degree outlier driving §V-B's crossover.
    degrees = {
        r["Dataset"]: r["Avg. Degree"] for r in rows if r["Type"] != "gu"
    }
    assert max(degrees, key=degrees.get) == "af_shell3"
    # Large meshes report estimated (starred) diameters, per the * rule.
    assert str(by_name["ecology2"]["Diameter"]).endswith("*")
