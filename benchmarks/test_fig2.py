"""Benchmark: regenerate Figure 2 (time-quality tradeoff scatter).

For both frameworks, the more expensive implementation must deliver
fewer colors on (nearly) every dataset — the paper's tradeoff panels:
Gunrock IS vs Hash (2a) and GraphBLAST IS vs MIS (2b).
"""

import pytest

from repro.harness.figures import fig2_series
from repro.harness.report import format_table, to_csv

from _bench import BENCH_SCALE_DIV, once, write_artifact


@pytest.fixture(scope="module")
def series():
    return fig2_series(scale_div=BENCH_SCALE_DIV, repetitions=3, seed=0)


def test_fig2_scatter(benchmark, artifact_dir):
    result = once(
        benchmark,
        lambda: fig2_series(scale_div=BENCH_SCALE_DIV, repetitions=1, seed=0),
    )
    for key, title in (
        ("gunrock", "Figure 2a: Gunrock time-quality tradeoff"),
        ("graphblast", "Figure 2b: GraphBLAST time-quality tradeoff"),
    ):
        write_artifact(
            artifact_dir, f"fig2_{key}.txt", format_table(result[key], title=title)
        )
        write_artifact(artifact_dir, f"fig2_{key}.csv", to_csv(result[key]))
    assert len(result["gunrock"]) == 24  # 12 datasets x 2 impls


def _tradeoff(points, cheap, rich):
    """Fraction of datasets where the expensive variant (rich) costs
    more time and uses no more colors."""
    by = {}
    for p in points:
        by.setdefault(p["Dataset"], {})[p["Implementation"]] = p
    wins = slower = 0
    for ds, impls in by.items():
        if impls[rich]["Runtime (ms)"] > impls[cheap]["Runtime (ms)"]:
            slower += 1
        if impls[rich]["Colors"] <= impls[cheap]["Colors"]:
            wins += 1
    return slower / len(by), wins / len(by)


def test_gunrock_tradeoff(benchmark, series):
    slower, better = once(
        benchmark, lambda: _tradeoff(series["gunrock"], "gunrock.is", "gunrock.hash")
    )
    # Hash is slower everywhere and at least matches IS colors nearly
    # everywhere (Fig. 2a).
    assert slower == 1.0
    assert better >= 0.8


def test_graphblast_tradeoff(benchmark, series):
    slower, better = once(
        benchmark,
        lambda: _tradeoff(series["graphblast"], "graphblas.is", "graphblas.mis"),
    )
    # MIS is slower and strictly better on colors everywhere (Fig. 2b).
    assert slower == 1.0
    assert better == 1.0
