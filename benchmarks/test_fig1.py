"""Benchmark: regenerate Figure 1 (speedup and color count across the
12 real-world datasets × 9 implementations).

Asserts the paper's headline claims:
* Gunrock IS geomean speedup over Naumov/JPL ≈ 1.3x, peak ≈ 2x, with a
  slowdown on af_shell3 (§V-B);
* GraphBLAST runtime order IS < JPL < MIS; quality order reversed;
* GraphBLAST MIS beats Naumov JPL and CC on colors and approximately
  ties sequential greedy (paper: 1.014x fewer) at a multiple less time.
"""

import pytest

from repro.harness.figures import fig1_series
from repro.harness.report import format_table, geomean, save_snapshot, snapshot, to_csv
from repro.harness.runner import speedup_vs

from _bench import BENCH_SCALE_DIV, once, write_artifact


@pytest.fixture(scope="module")
def series():
    return fig1_series(scale_div=BENCH_SCALE_DIV, repetitions=3, seed=0)


def test_fig1_grid(benchmark, artifact_dir):
    result = once(
        benchmark,
        lambda: fig1_series(scale_div=BENCH_SCALE_DIV, repetitions=1, seed=0),
    )
    write_artifact(
        artifact_dir,
        "fig1a_speedup.txt",
        format_table(result["speedup_rows"], title="Figure 1a: Speedup vs Naumov/JPL"),
    )
    write_artifact(
        artifact_dir,
        "fig1b_colors.txt",
        format_table(result["color_rows"], title="Figure 1b: Number of Colors"),
    )
    write_artifact(artifact_dir, "fig1a_speedup.csv", to_csv(result["speedup_rows"]))
    write_artifact(artifact_dir, "fig1b_colors.csv", to_csv(result["color_rows"]))
    save_snapshot(
        snapshot(
            result["speedup_rows"],
            experiment="fig1a",
            seed=0,
            scale_div=BENCH_SCALE_DIV,
        ),
        artifact_dir / "fig1a_speedup.json",
    )
    gm_rows = [
        {"Implementation": a, "Geomean speedup vs naumov.jpl": round(v, 3)}
        for a, v in result["geomean"].items()
    ]
    write_artifact(
        artifact_dir,
        "fig1a_geomean.txt",
        format_table(gm_rows, title="Figure 1a: geometric means"),
    )
    assert len(result["speedup_rows"]) == 12


def test_gunrock_headline_speedups(benchmark, series):
    per = once(benchmark, lambda: speedup_vs(series["cells"], "naumov.jpl"))["gunrock.is"]
    gm = series["geomean"]["gunrock.is"]
    # Paper: geomean 1.3x, peak 2x, af_shell3 slowdown 0.47x.
    assert 1.05 < gm < 1.6, gm
    assert 1.6 < max(per.values()) < 2.6
    assert per["af_shell3"] < 0.8


def test_graphblast_runtime_order(benchmark, series):
    cells = once(benchmark, lambda: {(c.dataset, c.algorithm): c for c in series["cells"]})
    names = {c.dataset for c in series["cells"]}
    jpl_over_is = geomean(
        cells[(n, "graphblas.jpl")].sim_ms / cells[(n, "graphblas.is")].sim_ms
        for n in names
    )
    mis_over_is = geomean(
        cells[(n, "graphblas.mis")].sim_ms / cells[(n, "graphblas.is")].sim_ms
        for n in names
    )
    # Paper: 1.98x and 3x slower than the IS baseline.
    assert 1.3 < jpl_over_is < 3.0
    assert 1.7 < mis_over_is < 4.5
    assert mis_over_is > jpl_over_is  # MIS is the slowest of the trio
    # Fastest GraphBLAST variant slower than Naumov (paper: 1.66x).
    gb_vs_naumov = 1.0 / series["geomean"]["graphblas.is"]
    assert 1.2 < gb_vs_naumov < 2.4


def test_color_quality_ratios(benchmark, series):
    cells = once(benchmark, lambda: {(c.dataset, c.algorithm): c for c in series["cells"]})
    names = {c.dataset for c in series["cells"]}

    def ratio(a, b):
        return geomean(cells[(n, a)].colors / cells[(n, b)].colors for n in names)

    # Paper: Naumov JPL needs 1.9x, CC 5.0x the colors of GraphBLAST MIS.
    assert 1.3 < ratio("naumov.jpl", "graphblas.mis") < 2.5
    assert 2.2 < ratio("naumov.cc", "graphblas.mis") < 6.5
    # Paper: MIS 1.014x fewer colors than sequential greedy.
    assert 0.85 < ratio("cpu.greedy", "graphblas.mis") < 1.25
    # Paper: IS and JPL need 2.9x / 2.5x the colors of MIS.
    assert 1.7 < ratio("graphblas.is", "graphblas.mis") < 3.8
    assert 1.5 < ratio("graphblas.jpl", "graphblas.mis") < 3.3
    # Gunrock IS comparable to Naumov JPL; hash strictly better.
    assert 0.8 < ratio("gunrock.is", "naumov.jpl") < 1.3
    assert ratio("gunrock.hash", "gunrock.is") < 1.0


def test_mis_vs_greedy_time(benchmark, series):
    cells = once(benchmark, lambda: {(c.dataset, c.algorithm): c for c in series["cells"]})
    names = {c.dataset for c in series["cells"]}
    greedy_over_mis = geomean(
        cells[(n, "cpu.greedy")].sim_ms / cells[(n, "graphblas.mis")].sim_ms
        for n in names
    )
    # Paper: MIS colors in 2.6x less time than sequential greedy.
    assert 1.6 < greedy_over_mis < 4.5
