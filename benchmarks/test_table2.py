"""Benchmark: regenerate Table II (Gunrock optimization ladder).

One benchmark per ladder row on the G3_circuit analogue, plus a shape
check of the whole ladder against the paper's measurements:

    Baseline (Advance-Reduce)          656 ms      —
    Hash Color                        17.21 ms   38.11x
    Independent Set with Atomics      13.67 ms    1.26x
    Independent Set without Atomics   11.15 ms    1.23x
    Min-Max Independent Set            6.68 ms    1.67x
"""

import pytest

from repro.harness import datasets as ds
from repro.harness.report import format_table, to_csv
from repro.harness.runner import run_cell
from repro.harness.tables import TABLE2_LADDER, table2_rows

from _bench import BENCH_SCALE_DIV, once, write_artifact


@pytest.mark.parametrize("label,algo", TABLE2_LADDER)
def test_table2_row(benchmark, label, algo):
    """Time each ladder variant individually (wall clock of the
    simulation; the reproduced metric is the simulated ms)."""
    benchmark.group = "table2"
    graph = ds.load("G3_circuit", scale_div=BENCH_SCALE_DIV, seed=0)
    cell = once(
        benchmark, lambda: run_cell(graph, algo, repetitions=1, seed=0)
    )
    benchmark.extra_info["sim_ms"] = round(cell.sim_ms, 4)
    benchmark.extra_info["colors"] = cell.colors
    assert cell.valid


def test_table2_ladder_shape(benchmark, artifact_dir):
    rows = once(
        benchmark,
        lambda: table2_rows(scale_div=BENCH_SCALE_DIV, repetitions=3, seed=0),
    )
    text = format_table(
        rows, title="Table II: Gunrock optimization impact (G3_circuit)"
    )
    write_artifact(artifact_dir, "table2.txt", text)
    write_artifact(artifact_dir, "table2.csv", to_csv(rows))

    ms = {r["Optimization"]: r["Performance (ms)"] for r in rows}
    ar = ms["Baseline (Advance-Reduce)"]
    hsh = ms["Hash Color"]
    at = ms["Independent Set with Atomics"]
    single = ms["Independent Set without Atomics"]
    mm = ms["Min-Max Independent Set"]
    # The paper's ordering holds row for row...
    assert ar > hsh > at > single > mm
    # ...and the headline magnitudes land in band (paper: 98x, 2.6x,
    # 1.23x, 1.67x).
    assert 40 < ar / mm < 250
    assert 1.8 < hsh / mm < 5.0
    assert 1.05 < at / single < 1.6
    assert 1.3 < single / mm < 2.4
