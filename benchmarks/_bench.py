"""Shared helpers for the reproduction benchmarks."""

from __future__ import annotations

from pathlib import Path

#: Down-scaling divisor used by all benchmark grids: large enough to be
#: work-dominated (where the calibrated cost model is valid), small
#: enough that the full suite stays laptop-sized.
BENCH_SCALE_DIV = 64

#: Reduced RGG sweep (same 2x progression as the paper's scales 15-24).
BENCH_RGG_SCALES = list(range(10, 18))

OUT_DIR = Path(__file__).resolve().parent / "out"


def write_artifact(directory: Path, name: str, text: str) -> None:
    """Persist a rendered table/figure so the run leaves artifacts."""
    (directory / name).write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer (the
    simulations are deterministic, so repeated rounds add nothing)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
