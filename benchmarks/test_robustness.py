"""Robustness benchmarks beyond the paper's headline artifacts.

* **Ladder-everywhere**: the Table II optimization ordering
  (AR > hash > ±atomics > min-max) must hold on every real-world
  dataset, not just G3_circuit — the claim is about mechanisms, so it
  should not be dataset-specific.
* **Seed sensitivity**: the paper averages 10 runs; here we quantify
  what that averaging hides — relative spread of colors and modeled
  runtime across seeds stays small for every implementation.
"""

import numpy as np
import pytest

from repro.core.registry import run_algorithm
from repro.harness import datasets as ds
from repro.harness.report import format_table
from repro.harness.runner import run_cell

from _bench import BENCH_SCALE_DIV, once, write_artifact

LADDER_DATASETS = [
    "offshore",
    "parabolic_fem",
    "ecology2",
    "G3_circuit",
    "thermomech_dK",
    "ASIC_320ks",
    "cage13",
    "atmosmodd",
]


def test_ladder_holds_on_every_dataset(benchmark, artifact_dir):
    def run():
        rows = []
        for name in LADDER_DATASETS:
            g = ds.load(name, scale_div=BENCH_SCALE_DIV, seed=0)
            times = {
                algo: run_cell(g, algo, repetitions=1, seed=0).sim_ms
                for algo in (
                    "gunrock.ar",
                    "gunrock.hash",
                    "gunrock.is_single",
                    "gunrock.is",
                )
            }
            rows.append({"Dataset": name, **{k: round(v, 4) for k, v in times.items()}})
        return rows

    rows = once(benchmark, run)
    write_artifact(
        artifact_dir,
        "robustness_ladder.txt",
        format_table(rows, title="Table II ordering across datasets"),
    )
    for r in rows:
        assert r["gunrock.ar"] > r["gunrock.hash"], r["Dataset"]
        assert r["gunrock.hash"] > r["gunrock.is"], r["Dataset"]
        assert r["gunrock.is_single"] > r["gunrock.is"], r["Dataset"]


SEED_ALGOS = [
    "gunrock.is",
    "gunrock.hash",
    "graphblas.is",
    "graphblas.mis",
    "naumov.jpl",
    "naumov.cc",
]


def test_seed_sensitivity(benchmark, artifact_dir):
    """Colors and modeled runtime vary mildly across 8 seeds — the
    averaging the paper applies (10 runs) is stabilizing noise, not
    hiding mode changes."""
    g = ds.load("G3_circuit", scale_div=BENCH_SCALE_DIV, seed=0)

    def run():
        rows = []
        for algo in SEED_ALGOS:
            colors, times = [], []
            for s in range(8):
                r = run_algorithm(algo, g, rng=1000 + s)
                colors.append(r.num_colors)
                times.append(r.sim_ms)
            rows.append(
                {
                    "Implementation": algo,
                    "colors mean": round(float(np.mean(colors)), 2),
                    "colors std": round(float(np.std(colors)), 2),
                    "ms mean": round(float(np.mean(times)), 4),
                    "ms rel-std": round(float(np.std(times) / np.mean(times)), 3),
                }
            )
        return rows

    rows = once(benchmark, run)
    write_artifact(
        artifact_dir,
        "robustness_seeds.txt",
        format_table(rows, title="Seed sensitivity (8 seeds, G3_circuit)"),
    )
    for r in rows:
        assert r["ms rel-std"] < 0.25, r
        assert r["colors std"] <= max(2.5, 0.2 * r["colors mean"]), r


def test_ladder_stable_across_scales(benchmark, artifact_dir):
    """The Table II ordering is not an artifact of the benchmark's
    down-scaling: it holds at 2x finer and 2x coarser divisors too."""
    def run():
        rows = []
        for div in (128, 64, 32):
            g = ds.load("G3_circuit", scale_div=div, seed=0)
            row = {"scale_div": div, "vertices": g.num_vertices}
            for algo in ("gunrock.ar", "gunrock.hash", "gunrock.is_single", "gunrock.is"):
                row[algo] = round(
                    run_cell(g, algo, repetitions=1, seed=0).sim_ms, 4
                )
            rows.append(row)
        return rows

    rows = once(benchmark, run)
    write_artifact(
        artifact_dir,
        "robustness_scales.txt",
        format_table(rows, title="Table II ordering across scale divisors"),
    )
    for r in rows:
        assert r["gunrock.ar"] > r["gunrock.hash"] > r["gunrock.is"], r
        assert r["gunrock.is_single"] > r["gunrock.is"], r
