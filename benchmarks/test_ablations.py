"""Ablation benchmarks for the design choices DESIGN.md calls out.

* ``ablate.minmax`` — §IV-B1: the min-max double independent set
  "reduces the coloring time almost by half";
* ``ablate.hash_size`` — §IV-B2: the hash-table size is "inversely
  related to the number of conflicts" and shaves colors;
* ``ablate.masking`` — §III-A1: masked vxm avoids work, unmasked pays;
* ``ablate.ordering`` — §VI future work: on power-law graphs a
  largest-degree-first priority beats random priorities on quality;
* ``ablate.gm`` — §VI future work: Gebremedhin-Manne speculative
  coloring versus the independent-set family.
"""

import pytest

from repro.core.gb_coloring import graphblas_is_coloring
from repro.core.gm import gebremedhin_manne_coloring
from repro.core.gr_hash import gunrock_hash_coloring
from repro.core.gr_is import gunrock_is_coloring
from repro.core.jones_plassmann import jones_plassmann_coloring
from repro.core.validate import is_valid_coloring
from repro.graph.generators import barabasi_albert, rmat
from repro.harness import datasets as ds
from repro.harness.report import format_table

from _bench import BENCH_SCALE_DIV, once, write_artifact


@pytest.fixture(scope="module")
def g3():
    return ds.load("G3_circuit", scale_div=BENCH_SCALE_DIV, seed=0)


def test_ablate_minmax(benchmark, g3, artifact_dir):
    """Min-max vs single-set independent set (Table II's key step)."""
    def run():
        mm = gunrock_is_coloring(g3, rng=1, min_max=True)
        single = gunrock_is_coloring(g3, rng=1, min_max=False)
        return mm, single

    mm, single = once(benchmark, run)
    ratio = single.sim_ms / mm.sim_ms
    write_artifact(
        artifact_dir,
        "ablate_minmax.txt",
        format_table(
            [
                {"variant": "single-set", "sim_ms": round(single.sim_ms, 4),
                 "iterations": single.iterations, "colors": single.num_colors},
                {"variant": "min-max", "sim_ms": round(mm.sim_ms, 4),
                 "iterations": mm.iterations, "colors": mm.num_colors},
            ],
            title=f"ablate.minmax (speedup {ratio:.2f}x; paper: 1.67x)",
        ),
    )
    assert 1.3 < ratio < 2.4  # "almost by half"
    assert mm.iterations < single.iterations


def test_ablate_hash_size(benchmark, g3, artifact_dir):
    """Sweep the per-vertex hash-table size 0..8 (§IV-B2)."""
    sizes = [0, 1, 2, 4, 8]

    def run():
        return {
            h: gunrock_hash_coloring(g3, rng=1, hash_size=h) for h in sizes
        }

    results = once(benchmark, run)
    rows = [
        {
            "hash_size": h,
            "colors": r.num_colors,
            "iterations": r.iterations,
            "sim_ms": round(r.sim_ms, 4),
        }
        for h, r in results.items()
    ]
    write_artifact(
        artifact_dir,
        "ablate_hash_size.txt",
        format_table(rows, title="ablate.hash_size (G3_circuit analogue)"),
    )
    for r in results.values():
        assert is_valid_coloring(g3, r.colors)
    # A real table must not be worse on quality than no table at all,
    # and the paper's "reduce the total number of colors by 1 or 2"
    # shows up between h=0 and the largest table.
    assert results[8].num_colors <= results[0].num_colors


def test_ablate_masking(benchmark, g3, artifact_dir):
    """Masked vs unmasked GrB_vxm work (§III-A1)."""
    def run():
        masked = graphblas_is_coloring(g3, rng=1, masked=True)
        unmasked = graphblas_is_coloring(g3, rng=1, masked=False)
        return masked, unmasked

    masked, unmasked = once(benchmark, run)
    assert masked.colors.tolist() == unmasked.colors.tolist()
    ratio = unmasked.sim_ms / masked.sim_ms
    write_artifact(
        artifact_dir,
        "ablate_masking.txt",
        format_table(
            [
                {"variant": "masked", "sim_ms": round(masked.sim_ms, 4)},
                {"variant": "unmasked", "sim_ms": round(unmasked.sim_ms, 4)},
            ],
            title=f"ablate.masking (unmasked pays {ratio:.2f}x)",
        ),
    )
    assert ratio > 1.5  # masking is a real work saver on this mesh


def test_ablate_ordering_powerlaw(benchmark, artifact_dir):
    """§VI: 'With power law graphs, it is possible that a random weight
    initialization would perform worse than largest-degree first.'
    Confirmed: LDF priorities use fewer colors on BA and R-MAT graphs."""
    ba = barabasi_albert(3000, 4, rng=2)
    rm = rmat(11, edge_factor=8, rng=2)

    def run():
        out = {}
        for name, g in (("barabasi_albert", ba), ("rmat", rm)):
            rand = jones_plassmann_coloring(g, rng=7)
            ldf = jones_plassmann_coloring(g, priorities=g.degrees)
            out[name] = (rand, ldf)
        return out

    results = once(benchmark, run)
    rows = []
    for name, (rand, ldf) in results.items():
        rows.append(
            {
                "graph": name,
                "random colors": rand.num_colors,
                "ldf colors": ldf.num_colors,
                "random rounds": rand.iterations,
                "ldf rounds": ldf.iterations,
            }
        )
    write_artifact(
        artifact_dir,
        "ablate_ordering.txt",
        format_table(rows, title="ablate.ordering (power-law graphs, §VI)"),
    )
    for name, (rand, ldf) in results.items():
        assert ldf.num_colors <= rand.num_colors, name


def test_ablate_gebremedhin_manne(benchmark, g3, artifact_dir):
    """§VI: compare the speculative-greedy family (CPU Gebremedhin-
    Manne, GPU Deveci-style) and the RLF quality reference against the
    independent-set family."""
    from repro.core.rlf import rlf_coloring
    from repro.core.speculative import speculative_gpu_coloring

    def run():
        return {
            "cpu.gm[t=8]": gebremedhin_manne_coloring(g3, rng=1, num_threads=8),
            "gpu.speculative": speculative_gpu_coloring(g3, rng=1),
            "cpu.rlf": rlf_coloring(g3),
            "gunrock.is": gunrock_is_coloring(g3, rng=1),
        }

    results = once(benchmark, run)
    write_artifact(
        artifact_dir,
        "ablate_gm.txt",
        format_table(
            [
                {"impl": k, "colors": r.num_colors,
                 "sim_ms": round(r.sim_ms, 4)}
                for k, r in results.items()
            ],
            title="ablate.gm (greedy-family vs independent-set family)",
        ),
    )
    # The greedy family wins on quality (its appeal, §II-B / §VI) while
    # the GPU IS formulation wins on modeled time; the GPU speculative
    # port closes most of the time gap at greedy-class quality.
    assert results["cpu.gm[t=8]"].num_colors <= results["gunrock.is"].num_colors
    assert results["gpu.speculative"].num_colors <= results["gunrock.is"].num_colors
    assert results["cpu.rlf"].num_colors <= results["gpu.speculative"].num_colors
    assert results["gunrock.is"].sim_ms < results["cpu.gm[t=8]"].sim_ms
    assert results["gpu.speculative"].sim_ms < results["cpu.gm[t=8]"].sim_ms


def test_ablate_whatif_segmented_reduce(benchmark, g3, artifact_dir):
    """Counterfactual: how cheap would segmented reduction have to get
    for Advance-Reduce to tie min-max IS?  The answer quantifies §V-B's
    'the bottleneck of the AR implementation is the segmented
    reduction' — the tie requires an implausible improvement."""
    from repro.harness.whatif import find_crossover, sweep_device_constant
    from repro.gpusim.device import K40C

    def run():
        rows = sweep_device_constant(
            g3,
            ["gunrock.ar", "gunrock.is"],
            "segment_ns",
            [0.0, 15.0, 50.0, 150.0],
        )
        tie = find_crossover(
            g3, "gunrock.ar", "gunrock.is", "segment_ns", 0.0, 150.0
        )
        return rows, tie

    rows, tie = once(benchmark, run)
    write_artifact(
        artifact_dir,
        "ablate_whatif_ar.txt",
        format_table(
            rows,
            title=(
                "ablate.whatif: AR vs min-max IS under cheaper segmented "
                f"reduce (tie at segment_ns ≈ {tie})"
            ),
        ),
    )
    # Even with a FREE segmented reduce, AR cannot tie min-max: it still
    # pays one color per iteration, frontier materialization, and two
    # syncs — so no crossover exists in the bracket.
    assert tie is None
    free = rows[0]
    assert free["gunrock.ar ms"] > free["gunrock.is ms"]


def test_ablate_balance(benchmark, g3, artifact_dir):
    """Post-processing ablation: class rebalancing tightens the
    chromatic schedule of the IS-family colorings without adding
    colors — the scheduling payoff of [1] quantified."""
    from repro.core.balance import rebalance_coloring
    from repro.core.metrics import coloring_metrics
    from repro.core.registry import run_algorithm

    def run():
        rows = []
        for algo in ("naumov.jpl", "gunrock.is", "graphblas.mis"):
            r = run_algorithm(algo, g3, rng=1)
            b = rebalance_coloring(g3, r)
            m0, m1 = coloring_metrics(r), coloring_metrics(b)
            rows.append(
                {
                    "Implementation": algo,
                    "colors": m0.num_colors,
                    "imbalance before": round(m0.imbalance, 2),
                    "imbalance after": round(m1.imbalance, 2),
                    "largest before": m0.largest_class,
                    "largest after": m1.largest_class,
                }
            )
        return rows

    rows = once(benchmark, run)
    write_artifact(
        artifact_dir,
        "ablate_balance.txt",
        format_table(rows, title="ablate.balance (class rebalancing)"),
    )
    for r in rows:
        assert r["imbalance after"] <= r["imbalance before"] + 1e-9, r
    # IS-family classes shrink geometrically; rebalancing must bite.
    jpl = rows[0]
    assert jpl["imbalance after"] < jpl["imbalance before"]
