"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables or figures,
writes the rendered artifact under ``benchmarks/out/``, asserts the
paper's qualitative shape, and times the regeneration once.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from _bench import OUT_DIR


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Keep the default-on dataset cache out of the working tree."""
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("repro-cache")
        )
    yield


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR
