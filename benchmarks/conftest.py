"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables or figures,
writes the rendered artifact under ``benchmarks/out/``, asserts the
paper's qualitative shape, and times the regeneration once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench import OUT_DIR


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR
