"""Benchmark: regenerate Figure 3 (RGG scaling, all four panels).

The sweep runs the same 2x vertex progression as the paper's
rgg_n_2_{15..24} at laptop scale.  Asserted shapes (§V-E):

* runtime grows with scale for both frameworks (panels a, b);
* Gunrock wins decisively at the small end (lower overhead);
* GraphBLAST closes the gap as scale (and RGG average degree) grows —
  the paper's crossover "beyond scale 23 and 24" maps to the top of our
  sweep;
* color counts grow slowly, with Gunrock ≈ paper's 1.14x advantage
  (panels c, d).
"""

import pytest

from repro.harness.figures import fig3_series
from repro.harness.report import format_table, geomean, to_csv

from _bench import BENCH_RGG_SCALES, once, write_artifact


@pytest.fixture(scope="module")
def rows():
    return fig3_series(scales=BENCH_RGG_SCALES, repetitions=1, seed=0)


def _split(rows):
    gun = {r["Scale"]: r for r in rows if r["Implementation"] == "gunrock.is"}
    gb = {r["Scale"]: r for r in rows if r["Implementation"] == "graphblas.is"}
    return gun, gb


def test_fig3_sweep(benchmark, artifact_dir):
    result = once(
        benchmark, lambda: fig3_series(scales=BENCH_RGG_SCALES[:4], repetitions=1, seed=0)
    )
    assert len(result) == 8


def test_fig3_artifacts(benchmark, rows, artifact_dir):
    text = once(
        benchmark,
        lambda: format_table(
            rows, title="Figure 3: RGG scaling (runtime & colors vs n, m)"
        ),
    )
    write_artifact(artifact_dir, "fig3.txt", text)
    write_artifact(artifact_dir, "fig3.csv", to_csv(rows))


def test_runtime_monotone_in_scale(benchmark, rows):
    gun, gb = once(benchmark, lambda: _split(rows))
    scales = sorted(gun)
    for series in (gun, gb):
        times = [series[s]["Runtime (ms)"] for s in scales]
        assert all(b > a for a, b in zip(times, times[1:]))


def test_gunrock_lower_overhead_small_scale(benchmark, rows):
    gun, gb = once(benchmark, lambda: _split(rows))
    smallest = min(gun)
    ratio = gb[smallest]["Runtime (ms)"] / gun[smallest]["Runtime (ms)"]
    assert ratio > 2.0  # "Gunrock does better for smaller graphs"


def test_graphblast_closes_gap_at_scale(benchmark, rows):
    gun, gb = once(benchmark, lambda: _split(rows))
    scales = sorted(gun)
    first = gb[scales[0]]["Runtime (ms)"] / gun[scales[0]]["Runtime (ms)"]
    last = gb[scales[-1]]["Runtime (ms)"] / gun[scales[-1]]["Runtime (ms)"]
    assert last < first / 2.5  # the gap collapses across the sweep
    assert last < 1.15  # ... to parity-or-better at the top

def test_rgg_color_ratio(benchmark, rows):
    gun, gb = once(benchmark, lambda: _split(rows))
    ratio = geomean(
        gb[s]["Colors"] / gun[s]["Colors"] for s in gun
    )
    # Paper: Gunrock needs 1.14x fewer colors on RGG.
    assert 0.95 < ratio < 1.35
